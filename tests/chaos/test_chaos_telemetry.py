"""Chaos at the telemetry tier: the pipeline observes faults, never
perturbs them, and replays byte-for-byte.

Invariants, per chaos seed:

1. determinism — two runs under the same seed produce byte-identical
   exports end to end: the time-series store dump, the tenant
   accountant (JSON and Prometheus text), the tail sampler's merged
   Chrome trace, and the operator snapshot;
2. retention — every failed, shed, and hedged ticket keeps its full
   trace (100%), while fast-path tickets are sampled at or under 10%;
3. coverage — scraping rides through crash/reboot/attest without
   skipping an interval, and windowed rates stay finite and consistent
   with the counters they derive from.
"""

import json

from repro.config import RK3588
from repro.faults import FaultPlan
from repro.fleet import Fleet, FleetLoadGenerator, ResilienceConfig, scale_platform
from repro.llm import TINYLLAMA
from repro.obs import TelemetryConfig
from repro.workloads import (
    FleetTenantSpec,
    generate_fault_schedule,
    generate_fleet_trace,
)

DURATION = 300.0
TENANTS = [
    FleetTenantSpec(
        "chat",
        TINYLLAMA.model_id,
        "interactive",
        sessions_per_hour=360.0,
        output_tokens=(2, 8),
        prefix_tokens=64,
        prefix_pool=2,
    ),
    FleetTenantSpec(
        "indexer",
        TINYLLAMA.model_id,
        "background",
        sessions_per_hour=120.0,
        workload="droidtask",
        output_tokens=(16, 48),
        mean_turns=2.0,
    ),
]


def run_telemetry_chaos(seed):
    """4 devices, 1 crash + 1 gray, hedging on, telemetry attached."""
    fleet = Fleet(
        [
            ("dev%d" % i, scale_platform(RK3588, "v%d" % i, cpu=1.0 + 0.1 * i))
            for i in range(4)
        ],
        [TINYLLAMA],
        policy="cache-aware",
        warm=True,
        resilience=ResilienceConfig(),
    )
    fleet.start_telemetry(
        until=4 * DURATION,
        config=TelemetryConfig(scrape_interval=5.0, tail_seed=seed),
    )
    plan = FaultPlan(
        seed,
        generate_fault_schedule(
            DURATION, list(fleet.devices), seed=seed, crashes=1, grays=1
        ),
    )
    fleet.start_resilience(until=4 * DURATION, plan=plan)
    trace = generate_fleet_trace(DURATION, TENANTS, seed=3)
    gen = FleetLoadGenerator(fleet.router, trace).run_blocking()
    telemetry = fleet.telemetry
    exports = json.dumps(
        {
            "store": telemetry.store.to_dict(),
            "accountant": telemetry.accountant.to_dict(),
            "prometheus": telemetry.accountant.render_prometheus(),
            "chrome": telemetry.sampler.to_chrome_trace(),
            "sampler": telemetry.sampler.to_dict(),
            "snapshot": telemetry.snapshot(),
            "top": telemetry.render_top(),
        },
        sort_keys=True,
    )
    return fleet, gen, exports


def test_telemetry_exports_replay_byte_identical(seed):
    fleet_a, gen_a, exports_a = run_telemetry_chaos(seed)
    fleet_b, gen_b, exports_b = run_telemetry_chaos(seed)
    assert exports_a == exports_b
    # Telemetry never perturbs the run it watches: the serving outcome
    # matches the telemetry-free chaos fingerprint dimensions.
    assert [t.device_id for t in gen_a.admitted] == [
        t.device_id for t in gen_b.admitted
    ]
    assert fleet_a.router.hedges == fleet_b.router.hedges


def test_telemetry_keeps_every_anomaly_and_samples_fast_path(seed):
    fleet, gen, _ = run_telemetry_chaos(seed)
    sampler = fleet.telemetry.sampler
    hedged = sum(1 for t in gen.admitted if t.done and t.hedges > 0)
    failed = sum(1 for t in gen.admitted if t.failed)
    slo_viol = sum(
        1
        for t in gen.admitted
        if t.done and t.hedges == 0 and t.slo_attained is False
    )
    assert sampler.kept.get("hedged", 0) == hedged
    assert sampler.kept.get("failed", 0) == failed
    assert sampler.kept.get("shed", 0) == len(gen.rejected)
    assert sampler.kept.get("slo-violated", 0) == slo_viol
    # The seeded crash produces anomalies to keep.
    assert sampler.kept_total > sampler.kept.get("sampled", 0)
    # Fast-path retention obeys the <=10% bound (seeded hash, not luck).
    assert sampler.keep_ratio_fast() <= 0.10
    # Retained traces stay within the configured allocation bound.
    assert len(sampler.traces) <= fleet.telemetry.config.trace_capacity


def test_scraping_rides_through_faults_without_gaps(seed):
    fleet, gen, _ = run_telemetry_chaos(seed)
    store = fleet.telemetry.store
    interval = fleet.telemetry.config.scrape_interval
    crashed = [d for d in fleet.devices.values() if d.lifecycle.crashes]
    assert len(crashed) == 1
    samples = store.samples("fleet_device_up", device=crashed[0].device_id)
    times = [t for t, _v in samples]
    # Whatever the ring retains is gap-free at the scrape interval —
    # the crash never cost a scrape.
    assert all(
        abs((b - a) - interval) < 1e-9 for a, b in zip(times, times[1:])
    )
    assert any(v == 0.0 for _t, v in samples)  # the outage was observed
    # Windowed rates agree with the counters underneath: over a window
    # spanning the whole run, rate x elapsed == counter delta.
    now = fleet.sim.now
    total = fleet.registry.counter("fleet_requests_total").value()
    window = now  # whole-run window (anchors at the oldest kept sample)
    rate = store.rate("fleet_requests_total", window, now)
    assert rate >= 0.0
    delta = store.delta("fleet_requests_total", window, now)
    assert delta <= total
    assert gen.offered >= delta > 0
