"""Shared chaos-suite plumbing: seeds, fault plans, hardened builders.

The suite parametrizes over ``CHAOS_SEEDS`` (override with a
comma-separated ``REPRO_CHAOS_SEEDS`` environment variable — CI sweeps
several).  Every test follows the same shape: build a system with the
hardened recovery policy, arm a seeded fault plan, run a workload, and
assert the three chaos invariants — the sim clock never hangs, outcomes
are byte-identical per seed, and security checks still fire with
injection armed.
"""

import os

import pytest

from repro import TINYLLAMA, TZLLM
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy


def _seeds():
    env = os.environ.get("REPRO_CHAOS_SEEDS", "")
    if env.strip():
        return [int(s) for s in env.split(",") if s.strip()]
    return [7, 1337, 90210]


CHAOS_SEEDS = _seeds()


@pytest.fixture(params=CHAOS_SEEDS)
def seed(request):
    return request.param


def _full_plan(seed):
    """Every fault site armed at rates the hardened policy can absorb."""
    return FaultPlan(
        seed,
        [
            FaultSpec("flash.read_error", probability=0.02),
            FaultSpec("flash.bit_flip", probability=0.01),
            FaultSpec("cma.migration_fail", probability=0.005),
            FaultSpec("ree.npu_stall", probability=0.05, delay=2e-3, jitter=2e-3),
            FaultSpec("ree.smc_drop", probability=0.1, max_fires=20),
            FaultSpec("tee.job_hang", probability=0.05, delay=5e-3, jitter=5e-3),
        ],
    )


def _hardened_system(**kwargs):
    """A TZ-LLM system with every recovery mechanism armed, cold-started
    (so chaos runs hit the measured path, not first-boot setup)."""
    kwargs.setdefault("recovery", RecoveryPolicy.hardened())
    system = TZLLM(TINYLLAMA, **kwargs)
    system.run_infer(8, 0)
    return system


@pytest.fixture()
def full_plan():
    """Factory fixture: seed -> the all-sites fault plan."""
    return _full_plan


@pytest.fixture()
def hardened_system():
    """Factory fixture: kwargs -> a cold-started hardened TZ-LLM."""
    return _hardened_system
