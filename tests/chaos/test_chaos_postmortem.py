"""Chaos: terminally failed requests carry a usable postmortem.

With the stack instrumented, a hardened system whose retries are
exhausted must hand back a request whose ``postmortem`` tail names the
injected fault site and shows each retry attempt — the flight recorder
answering "what led up to this?" without per-request logging.
"""

import pytest

from repro import TINYLLAMA, TZLLM
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.obs import instrument
from repro.serve import GatewayConfig, ServeGateway


def _failing_system(seed):
    """Hardened TZ-LLM whose flash fails every read: recovery retries
    (recorded), then gives up, so the gateway sees retryable failures.

    Checkpointing is off so the failure lands in the pipeline's load
    path (the checkpoint-restore retry has its own recorded site,
    ``ta.checkpoint_restore``)."""
    system = TZLLM(
        TINYLLAMA, recovery=RecoveryPolicy.hardened(), use_checkpoint=False
    )
    system.run_infer(8, 0)  # cold start before the faults arm
    obs = instrument(system)
    plan = FaultPlan(seed, [FaultSpec("flash.read_error", probability=1.0)])
    plan.injector(system.sim).arm(system)
    return system, obs


def test_exhausted_retries_attach_postmortem(seed):
    system, obs = _failing_system(seed)
    gateway = ServeGateway(system, GatewayConfig(shedding=False, max_retries=1))
    request = gateway.submit(32, 0)
    gateway.sim.run_until(request.completion)

    assert request.state == "failed"
    # Gateway retried before giving up: first failure requeued, second
    # one terminal (max_retries=1).
    assert request.failure_count == 2
    assert request.postmortem, "terminal failure must carry a postmortem"

    sites = [event.site for event in request.postmortem]
    # The injected fault site is in the tail...
    assert "flash.read_error" in sites
    # ...as are the TA-side load retries it provoked...
    assert "pipeline.load" in sites
    # ...the gateway's re-queue of the first failed attempt...
    assert "gateway.requeue" in sites
    # ...and the terminal verdict itself, last.
    assert request.postmortem[-1].site == "gateway.failed"
    terminal = dict(request.postmortem[-1].data)
    assert terminal["request_id"] == str(request.request_id)
    assert terminal["klass"] == "retryable"

    # Both dispatch attempts are visible in the tail.
    attempts = [
        dict(e.data)["attempt"]
        for e in request.postmortem
        if e.site == "gateway.dispatch"
    ]
    assert attempts == ["1", "2"]


def test_postmortem_is_bounded_by_config(seed):
    system, obs = _failing_system(seed)
    gateway = ServeGateway(
        system, GatewayConfig(shedding=False, max_retries=1, postmortem_events=4)
    )
    request = gateway.submit(32, 0)
    gateway.sim.run_until(request.completion)
    assert request.state == "failed"
    assert len(request.postmortem) == 4
    assert request.postmortem[-1].site == "gateway.failed"


def test_no_observability_means_no_postmortem(seed):
    system = TZLLM(TINYLLAMA, recovery=RecoveryPolicy.hardened())
    system.run_infer(8, 0)
    plan = FaultPlan(seed, [FaultSpec("flash.read_error", probability=1.0)])
    plan.injector(system.sim).arm(system)
    gateway = ServeGateway(system, GatewayConfig(shedding=False, max_retries=0))
    request = gateway.submit(32, 0)
    gateway.sim.run_until(request.completion)
    assert request.state == "failed"
    assert request.postmortem is None
