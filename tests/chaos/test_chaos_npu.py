"""Chaos: the split NPU driver under dropped hand-offs, stalls and hangs."""

import pytest

from repro.errors import IagoViolation
from repro.faults import FaultPlan, FaultSpec


def test_smc_drops_recovered_by_watchdog(seed, hardened_system):
    """Lost take-over SMCs never launch the secure job; the TEE watchdog
    times out and re-issues the shadow with the same sequence number."""
    system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
    plan = FaultPlan(seed, [FaultSpec("ree.smc_drop", probability=1.0, max_fires=2)])
    injector = plan.injector(system.sim).arm(system)
    record = system.run_infer(64, 2)
    assert record.decode is not None and len(record.decode.token_ids) == 2
    assert injector.fired["ree.smc_drop"] == 2
    assert system.stack.ree_npu.shadow_jobs_dropped == 2
    assert system.stack.tee_npu.reissues == 2


def test_stalls_and_hangs_absorbed(seed, hardened_system):
    """Scheduler stalls and post-IRQ hangs slow the run down but never
    wedge it: the sim clock always reaches a terminal state."""
    system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
    plan = FaultPlan(
        seed,
        [
            FaultSpec("ree.npu_stall", probability=0.3, delay=1e-3, jitter=1e-3),
            FaultSpec("tee.job_hang", probability=0.2, delay=2e-3, jitter=2e-3),
        ],
    )
    injector = plan.injector(system.sim).arm(system)
    record = system.run_infer(64, 4)
    assert record.decode is not None and len(record.decode.token_ids) == 4
    summary = injector.summary()
    assert summary["ree.npu_stall"]["checked"] > 0
    assert summary["tee.job_hang"]["checked"] > 0


def test_npu_chaos_is_deterministic_per_seed(seed, hardened_system):
    """Same seed, same plan: identical timings and fault decisions."""

    def run_once():
        system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
        plan = FaultPlan(
            seed,
            [
                FaultSpec("ree.smc_drop", probability=0.2, max_fires=10),
                FaultSpec("ree.npu_stall", probability=0.3, delay=1e-3, jitter=1e-3),
                FaultSpec("tee.job_hang", probability=0.2, delay=2e-3, jitter=2e-3),
            ],
        )
        injector = plan.injector(system.sim).arm(system)
        record = system.run_infer(64, 4)
        return (
            record.ttft,
            system.sim.now,
            system.stack.tee_npu.reissues,
            injector.summary(),
        )

    assert run_once() == run_once()


def test_replay_attack_still_detected_under_chaos(hardened_system):
    """Fault injection must not blunt the security checks: a replayed
    take-over for a completed job raises IagoViolation even while the
    schedulers run under stall/hang injection."""
    system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
    plan = FaultPlan(
        5,
        [
            FaultSpec("ree.npu_stall", probability=0.3, delay=1e-3, jitter=1e-3),
            FaultSpec("tee.job_hang", probability=0.2, delay=2e-3, jitter=2e-3),
        ],
    )
    plan.injector(system.sim).arm(system)
    system.run_infer(32, 0)
    stack = system.stack
    assert stack.tee_npu.secure_jobs_completed > 0
    done = [r for r in stack.tee_npu._records.values() if r.state.name == "DONE"]
    assert done
    record = done[0]
    sim = system.sim

    def replay():
        yield from stack.ree_npu.attack_replay_take_over(record.shadow_id, record.seq)

    with pytest.raises(IagoViolation, match="replay|state"):
        sim.run_until(sim.process(replay()))

    def forge():
        yield from stack.ree_npu.attack_forge_take_over(999999, 0)

    with pytest.raises(IagoViolation, match="unknown"):
        sim.run_until(sim.process(forge()))
