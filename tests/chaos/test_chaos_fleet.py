"""Chaos at the fleet tier: crashes and gray failure under live traffic.

The three chaos invariants, one layer above the serving gateway:

1. liveness — every offered request reaches a terminal state (ticket
   done, failed, or shed at admission); no session is silently lost;
2. determinism — two runs under the same seed agree on every winner
   device, every hedge/failover count, and the full metrics export,
   byte for byte — hedging races included, because losers are decided
   by deterministic event order, not wall-clock;
3. accounting — ticket-level SLO math admits no double-charging: SLO
   verdicts equal completed tickets with a deadline, exactly once each,
   however many attempts raced underneath.
"""

import json

from repro.config import RK3588
from repro.faults import FaultPlan
from repro.fleet import Fleet, FleetLoadGenerator, ResilienceConfig, scale_platform
from repro.llm import TINYLLAMA
from repro.workloads import (
    FleetTenantSpec,
    generate_fault_schedule,
    generate_fleet_trace,
)

DURATION = 300.0
TENANTS = [
    FleetTenantSpec(
        "chat",
        TINYLLAMA.model_id,
        "interactive",
        sessions_per_hour=360.0,
        output_tokens=(2, 8),
        prefix_tokens=64,
        prefix_pool=2,
    ),
    FleetTenantSpec(
        "indexer",
        TINYLLAMA.model_id,
        "background",
        sessions_per_hour=120.0,
        workload="droidtask",
        output_tokens=(16, 48),
        mean_turns=2.0,
    ),
]


def _platforms(n=4):
    return [
        ("dev%d" % i, scale_platform(RK3588, "v%d" % i, cpu=1.0 + 0.1 * i))
        for i in range(n)
    ]


def run_fleet_chaos(seed):
    """One full chaos replay: 4 devices, 1 crash + 1 gray, hedging on."""
    fleet = Fleet(
        _platforms(),
        [TINYLLAMA],
        policy="cache-aware",
        warm=True,
        resilience=ResilienceConfig(),
    )
    plan = FaultPlan(
        seed,
        generate_fault_schedule(
            DURATION, list(fleet.devices), seed=seed, crashes=1, grays=1
        ),
    )
    fleet.start_resilience(until=4 * DURATION, plan=plan)
    trace = generate_fleet_trace(DURATION, TENANTS, seed=3)
    gen = FleetLoadGenerator(fleet.router, trace).run_blocking()
    fingerprint = {
        "winners": [t.device_id for t in gen.admitted],
        "states": [t.state for t in gen.admitted],
        "summary": gen.summary(),
        "metrics": fleet.render_metrics(),
    }
    return fleet, gen, json.dumps(fingerprint, sort_keys=True)


def test_fleet_chaos_liveness_and_no_lost_sessions(seed):
    fleet, gen, _ = run_fleet_chaos(seed)
    assert gen.offered > 20
    # Liveness: every offered request reached exactly one terminal state.
    terminal = sum(1 for t in gen.admitted if t.state in ("done", "failed"))
    assert terminal + len(gen.rejected) == gen.offered
    for ticket in gen.admitted:
        assert ticket.completion.triggered
    # The seeded crash actually happened and was survived.
    assert sum(d.lifecycle.crashes for d in fleet.devices.values()) == 1
    crashed = [d for d in fleet.devices.values() if d.lifecycle.crashes]
    assert crashed[0].lifecycle.drains == 1
    # No lost sessions: every session that lost its device either
    # finished all its turns or was re-routed — no ticket is stranded
    # pending, and no pin points at a vanished holder.
    for session_id, device_id in fleet.router.pins.items():
        assert device_id in fleet.devices
    # Failed tickets (if any) carry full provenance for the postmortem.
    for ticket in gen.admitted:
        if ticket.failed:
            assert ticket.failures


def test_fleet_chaos_hedging_is_seed_deterministic(seed):
    _fleet_a, gen_a, fp_a = run_fleet_chaos(seed)
    _fleet_b, gen_b, fp_b = run_fleet_chaos(seed)
    # Same seed, same trace: identical winner devices, hedge counts, and
    # the entire metrics export — byte for byte.
    assert fp_a == fp_b
    assert gen_a.router.hedges == gen_b.router.hedges
    assert gen_a.router.hedge_wins == gen_b.router.hedge_wins
    assert gen_a.router.failovers == gen_b.router.failovers


def test_fleet_chaos_slo_accounting_never_double_charges(seed):
    fleet, gen, _ = run_fleet_chaos(seed)
    with_verdict = [
        t for t in gen.admitted if t.done and t.deadline is not None
    ]
    attained = fleet.registry.counter("fleet_slo_total").value(outcome="attained")
    violated = fleet.registry.counter("fleet_slo_total").value(outcome="violated")
    # One verdict per completed deadline-bearing ticket — a ticket that
    # hedged (two attempts) still counts exactly once.
    assert attained + violated == len(with_verdict)
    assert fleet.registry.counter("fleet_slo_requests_total").value() == len(
        with_verdict
    )
    assert sum(1 for t in with_verdict if t.slo_attained) == attained
