"""Chaos: a multi-tenant serving trace with every fault site armed.

The three chaos invariants, at the outermost layer of the stack:

1. liveness — every offered request reaches a terminal state (done,
   failed, or rejected); the sim clock never hangs;
2. determinism — two full runs under the same seed agree to the last
   byte in both the request log and the JSON metrics export;
3. accounting — the SLO export carries the failure-provenance lanes
   (per-class ``failures`` / ``retries`` / ``failed`` counters).
"""

import json

import pytest

from repro import TINYLLAMA
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.serve import GatewayConfig, LoadGenerator, ServeGateway
from repro.workloads import TenantSpec, generate_multitenant_trace

TENANTS = [
    TenantSpec(
        "chat",
        TINYLLAMA.model_id,
        "interactive",
        rate_per_hour=240,
        output_tokens=(2, 8),
    ),
    TenantSpec(
        "indexer",
        TINYLLAMA.model_id,
        "background",
        rate_per_hour=90,
        workload="droidtask",
        output_tokens=(48, 96),
    ),
]


def run_trace(seed, hardened_system, full_plan):
    system = hardened_system(cache_fraction=1.0)
    injector = full_plan(seed).injector(system.sim).arm(system)
    gateway = ServeGateway(system, GatewayConfig(scheduling="priority"))
    trace = generate_multitenant_trace(300.0, TENANTS, seed=3)
    loadgen = LoadGenerator(gateway, trace).run_blocking()
    metrics = json.dumps(gateway.accountant.to_dict(), sort_keys=True)
    return gateway, loadgen, metrics, injector


def test_chaos_trace_liveness_and_accounting(seed, hardened_system, full_plan):
    gateway, loadgen, metrics, injector = run_trace(seed, hardened_system, full_plan)
    assert loadgen.offered > 5
    # Liveness: every offered request reached exactly one terminal state.
    terminal = len(gateway.completed) + len(gateway.failed) + len(loadgen.rejected)
    assert terminal == loadgen.offered
    for request in gateway.completed:
        assert request.state == "done"
    for request in gateway.failed:
        assert request.state == "failed" and request.failures
    # Accounting: the export carries the failure-provenance lanes.
    classes = json.loads(metrics)["classes"]
    for stats in classes.values():
        assert "failures" in stats and "retries" in stats and "failed" in stats
    # The plan genuinely exercised the stack.
    assert sum(s["checked"] for s in injector.summary().values()) > 0


def test_chaos_trace_is_byte_identical_per_seed(seed, hardened_system, full_plan):
    a_gateway, a_loadgen, a_metrics, _ = run_trace(seed, hardened_system, full_plan)
    b_gateway, b_loadgen, b_metrics, _ = run_trace(seed, hardened_system, full_plan)
    assert a_loadgen.offered == b_loadgen.offered
    assert a_gateway.request_log() == b_gateway.request_log()
    assert a_metrics == b_metrics
