"""Chaos: the prefill pipeline under storage faults, recovered in place."""

import pytest

from repro.errors import StorageError
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy


def test_flash_read_errors_recovered_by_retry(seed, hardened_system):
    """A bounded burst of read errors is absorbed; the infer succeeds and
    the retries are visible in the pipeline metrics."""
    system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
    plan = FaultPlan(seed, [FaultSpec("flash.read_error", probability=1.0, max_fires=2)])
    injector = plan.injector(system.sim).arm(system)
    record = system.run_infer(64, 2)
    assert record.decode is not None and len(record.decode.token_ids) == 2
    assert injector.fired["flash.read_error"] == 2
    assert record.pipeline.io_retries >= 1
    assert system.stack.kernel.fs.flash.read_errors == 2


def test_bit_flip_recovered_by_refetch(seed, hardened_system):
    """A silently corrupted chunk fails its checksum; the hardened
    pipeline re-fetches it over the bounce buffer instead of aborting."""
    system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
    plan = FaultPlan(seed, [FaultSpec("flash.bit_flip", probability=1.0, max_fires=1)])
    injector = plan.injector(system.sim).arm(system)
    record = system.run_infer(64, 0)
    assert record.ttft > 0
    assert injector.fired["flash.bit_flip"] == 1
    assert record.pipeline.refetches >= 1
    assert system.ta.backend.refetched_groups >= 1


def test_legacy_policy_still_surfaces_the_error(seed, hardened_system):
    """Default (legacy) recovery keeps the old contract: a single read
    error aborts the prefill and surfaces to the CA."""
    system = hardened_system(cache_fraction=0.0, recovery=RecoveryPolicy())
    plan = FaultPlan(seed, [FaultSpec("flash.read_error", probability=1.0, max_fires=1)])
    plan.injector(system.sim).arm(system)
    with pytest.raises(StorageError):
        system.run_infer(64, 0)
    # ...and the TA stays serviceable afterwards.
    record = system.run_infer(32, 0)
    assert record.ttft > 0


def test_faulted_pipeline_is_deterministic_per_seed(seed, hardened_system):
    """Two identical systems under the same plan agree to the last byte:
    same fault decisions, same retry counts, same timings."""

    def run_once():
        system = hardened_system(cache_fraction=0.0)
        plan = FaultPlan(
            seed,
            [
                FaultSpec("flash.read_error", probability=0.05),
                FaultSpec("flash.bit_flip", probability=0.02),
            ],
        )
        injector = plan.injector(system.sim).arm(system)
        record = system.run_infer(96, 4)
        return (
            record.ttft,
            record.pipeline.io_retries,
            record.pipeline.refetches,
            system.sim.now,
            injector.summary(),
        )

    assert run_once() == run_once()


def test_cma_migration_failures_recovered(seed):
    """Transiently pinned pages during CMA migration are retried with
    backoff inside the kernel; the contiguous allocation still succeeds."""
    from repro.config import PAGE_SIZE, RK3588
    from repro.hw import Board
    from repro.ree.kernel import REEKernel
    from repro.sim import Simulator

    sim = Simulator()
    board = Board(sim, RK3588.with_memory(64 * PAGE_SIZE))
    kernel = REEKernel(sim, board, granule=PAGE_SIZE, os_footprint=0)
    region = kernel.reserve_cma("params", 32 * PAGE_SIZE)
    kernel.boot()
    # Crowd the outside with unmovable pages so movable victims spill
    # into the CMA region, then free the crowd to open migration room.
    filler = kernel.alloc_unmovable(24 * PAGE_SIZE, tag="filler")
    victim = kernel.map_anonymous(16 * PAGE_SIZE, tag="victim")
    spilled = sorted(f for f in victim.frames if f >= region.start_frame)[:8]
    assert len(spilled) == 8
    kernel.free(filler)

    plan = FaultPlan(seed, [FaultSpec("cma.migration_fail", probability=1.0, max_fires=2)])
    region.fault_injector = plan.injector(sim)

    proc = sim.process(region.allocate_range(spilled[0], 8))
    alloc = sim.run_until(proc)
    assert alloc.contiguous
    assert region.migration_failures == 2  # the site fired...
    assert region.migration_retries == 2  # ...and each pin was retried through
    assert victim.n_frames == 16  # the displaced mapping survived intact
