"""Chaos: security checks must keep firing while fault injection is armed.

Recovery must never become a bypass: a retry path that re-reads through
a compromised REE filesystem has to fail the same integrity checks the
first attempt did, and memory protection is enforced by hardware
regardless of what the schedulers are doing.
"""

import pytest

from repro.errors import AccessDenied, IagoViolation
from repro.faults import FaultPlan, FaultSpec
from repro.hw import World

N = World.NONSECURE


def test_persistent_tamper_detected_despite_refetch(seed, hardened_system):
    """A persistently tampering REE fs fails the checksum on the original
    read AND on every bounce-buffer re-fetch; the hardened pipeline
    surfaces IagoViolation instead of looping forever."""
    system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
    plan = FaultPlan(
        seed,
        [FaultSpec("ree.npu_stall", probability=0.2, delay=1e-3, jitter=1e-3)],
    )
    plan.injector(system.sim).arm(system)

    def forge(path, offset, data):
        return b"\xde\xad" * (len(data) // 2) + data[2 * (len(data) // 2):]

    system.stack.kernel.fs.tamper_hook = forge
    with pytest.raises(IagoViolation, match="checksum"):
        system.run_infer(32, 0)
    # The hardened policy genuinely tried the recovery path first —
    # and no re-fetch ever passed verification.
    assert system.ta.backend.refetch_attempts >= 1
    assert system.ta.backend.refetched_groups == 0
    # The TA recovers once the attack stops.
    system.stack.kernel.fs.tamper_hook = None
    record = system.run_infer(16, 0)
    assert record.ttft > 0


def test_forged_cma_address_detected_with_injection_armed(hardened_system):
    """The CMA Iago check (returned address must match the contiguous
    reservation) is orthogonal to fault recovery."""
    system = hardened_system(cache_fraction=0.0, use_checkpoint=False)
    plan = FaultPlan(
        9,
        [FaultSpec("ree.npu_stall", probability=0.2, delay=1e-3, jitter=1e-3)],
    )
    plan.injector(system.sim).arm(system)
    system.stack.tz_driver.alloc_result_hook = (
        lambda addr: addr + system.stack.kernel.db.granule
    )
    with pytest.raises(IagoViolation, match="contiguous"):
        system.run_infer(32, 0)


def test_ree_snoop_still_denied_during_chaos(hardened_system, full_plan):
    """TZASC enforcement is hardware: injected faults in the drivers do
    not open a window for the REE to read protected parameters."""
    system = hardened_system(cache_fraction=1.0)
    full_plan(13).injector(system.sim).arm(system)
    system.run_infer(32, 2)
    region = system.ta.params_region
    assert region.protected > 0
    with pytest.raises(AccessDenied):
        system.stack.board.memory.cpu_read(region.base_addr, 64, N)
