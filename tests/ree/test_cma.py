"""Unit tests for the CMA region: contiguous allocation with migration."""

import pytest

from repro.config import RK3588, MemorySpec, PAGE_SIZE
from repro.errors import ContiguityError, MemoryError_, OutOfMemory
from repro.hw import Board
from repro.ree.kernel import REEKernel
from repro.sim import Simulator

PG = PAGE_SIZE


def make_kernel(total_frames=64, cma_frames=32, granule=PG, os_footprint=0):
    sim = Simulator()
    board = Board(sim, RK3588.with_memory(total_frames * granule))
    kernel = REEKernel(sim, board, granule=granule, os_footprint=os_footprint)
    region = kernel.reserve_cma("params", cma_frames * granule)
    kernel.boot()
    return sim, kernel, region


def run_gen(sim, gen):
    proc = sim.process(gen)
    return sim.run_until(proc)


def test_cma_region_placed_at_top_of_ram():
    _sim, kernel, region = make_kernel(64, 32)
    assert region.start_frame == 32
    assert region.end_frame == 64


def test_allocate_free_run_costs_only_fast_path():
    sim, kernel, region = make_kernel()
    alloc = run_gen(sim, region.allocate_range(region.start_frame, 8))
    assert alloc.contiguous
    assert sorted(alloc.frames) == list(range(32, 40))
    expected = kernel.buddy.alloc_seconds(8 * PG, kernel.spec.memory)
    assert sim.now == pytest.approx(expected)
    assert region.total_migrated_bytes == 0


def test_allocate_occupied_run_migrates_and_preserves_data():
    sim, kernel, region = make_kernel(64, 32)
    # Fill most of the outside with unmovable pages; the movable victim
    # then lands (per the CMA-balancing heuristic) inside the region.
    filler = kernel.alloc_unmovable(24 * PG, tag="filler")
    victim = kernel.map_anonymous(16 * PG, tag="victim")
    spilled = sorted(f for f in victim.frames if f >= region.start_frame)[:8]
    assert len(spilled) == 8
    # Write a pattern into the victim's spilled pages.
    mem = kernel.board.memory
    for index, frame in enumerate(sorted(spilled)):
        mem._raw_write(kernel.db.frame_addr(frame), bytes([index + 1]) * 64)
    kernel.free(filler)  # make room outside for migration destinations

    start = sorted(spilled)[0]
    alloc = run_gen(sim, region.allocate_range(start, 8, threads=1))
    assert region.total_migrated_bytes == 8 * PG
    assert len(region.migrations) == 1
    # The victim still owns 16 frames and its data survived the copy.
    assert victim.n_frames == 16
    moved = sorted(f for f in victim.frames if f < region.start_frame)
    payloads = {mem._raw_read(kernel.db.frame_addr(f), 64)[0] for f in moved}
    assert set(range(1, 9)).issubset(payloads)
    region.release(alloc)


def test_migration_time_matches_bandwidth_model():
    sim, kernel, region = make_kernel(64, 32)
    filler = kernel.alloc_unmovable(24 * PG)
    victim = kernel.map_anonymous(16 * PG)
    kernel.free(filler)
    start = min(f for f in victim.frames if f >= region.start_frame)
    t0 = sim.now
    run_gen(sim, region.allocate_range(start, 8, threads=1))
    migration = 8 * PG / kernel.spec.memory.cma_migration_bw
    fast_path = kernel.buddy.alloc_seconds(8 * PG, kernel.spec.memory)
    assert sim.now - t0 == pytest.approx(migration + fast_path)


def test_migration_scales_with_threads():
    spec = MemorySpec()
    _sim, _kernel, region = make_kernel()
    one = region.migration_seconds(8 * spec.cma_migration_bw, 1)
    four = region.migration_seconds(8 * spec.cma_migration_bw, 4)
    assert one == pytest.approx(8.0)
    assert four == pytest.approx(4.0)  # sqrt(4) = 2x aggregate


def test_allocation_outside_region_rejected():
    sim, _kernel, region = make_kernel()

    def attempt():
        yield from region.allocate_range(0, 4)

    proc = sim.process(attempt())
    with pytest.raises(ContiguityError):
        sim.run_until(proc)


def test_migration_without_destination_raises_oom():
    sim, kernel, region = make_kernel(64, 32)
    kernel.alloc_unmovable(32 * PG)  # fills all of outside (unreclaimable)
    victim = kernel.map_anonymous(8 * PG)  # lands inside CMA
    start = min(victim.frames)

    def attempt():
        yield from region.allocate_range(start, 8)

    proc = sim.process(attempt())
    with pytest.raises(OutOfMemory):
        sim.run_until(proc)


def test_release_tail_shrinks_from_end():
    sim, _kernel, region = make_kernel()
    alloc = run_gen(sim, region.allocate_range(region.start_frame, 8))
    region.release_tail(alloc, 3)
    assert alloc.n_frames == 5
    assert max(alloc.frames) == region.start_frame + 4
    assert region.free_frames == 32 - 5
    region.release_tail(alloc, 5)
    assert alloc.freed
    assert region.free_frames == 32


def test_release_tail_bounds_checked():
    sim, _kernel, region = make_kernel()
    alloc = run_gen(sim, region.allocate_range(region.start_frame, 4))
    with pytest.raises(MemoryError_):
        region.release_tail(alloc, 5)


def test_spill_takes_highest_frames_first():
    _sim, kernel, region = make_kernel(64, 32)
    kernel.alloc_unmovable(32 * PG)  # fill outside
    spilled = kernel.map_anonymous(4 * PG)
    assert sorted(spilled.frames) == [60, 61, 62, 63]


def test_migrated_bytes_between_window_accounting():
    sim, kernel, region = make_kernel(64, 32)
    filler = kernel.alloc_unmovable(24 * PG)
    victim = kernel.map_anonymous(16 * PG)
    kernel.free(filler)
    start = min(f for f in victim.frames if f >= region.start_frame)
    run_gen(sim, region.allocate_range(start, 8))
    record = region.migrations[0]
    # Full window covers everything; half window covers ~half the bytes.
    assert region.migrated_bytes_between(0, sim.now) == pytest.approx(8 * PG)
    mid = (record.start + record.end) / 2
    assert region.migrated_bytes_between(record.start, mid) == pytest.approx(4 * PG)
