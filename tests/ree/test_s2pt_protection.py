"""Tests for the S2PT alternative protection design and its DMA gap."""

import pytest

from repro.config import MiB, S2PTSpec
from repro.errors import AccessDenied, DMAViolation
from repro.hw import AddrRange, World
from repro.ree.s2pt import S2PTProtection

S = World.SECURE
N = World.NONSECURE
SECRET = AddrRange(8 * MiB, 4 * MiB)


def test_s2pt_blocks_ree_cpu_access():
    s2pt = S2PTProtection(S2PTSpec())
    s2pt.protect(SECRET)
    with pytest.raises(AccessDenied):
        s2pt.check_cpu(AddrRange(9 * MiB, 64), N)
    s2pt.check_cpu(AddrRange(9 * MiB, 64), S)  # secure side still mapped
    s2pt.check_cpu(AddrRange(0, 64), N)  # unprotected memory open


def test_s2pt_dma_gap_without_iommu_interception():
    """§2.4.2: S2PT cannot prevent DMA attacks by itself.

    The identical attack that the TZASC blocks passes straight through
    stage-2 protection — the executable version of the paper's argument
    for choosing TZASC.
    """
    s2pt = S2PTProtection(S2PTSpec(), intercept_iommu=False)
    s2pt.protect(SECRET)
    # A rogue device reads the "protected" range: no exception at all.
    s2pt.check_dma(AddrRange(9 * MiB, 64), "rogue-nic")


def test_s2pt_iommu_interception_closes_the_gap_at_a_cost():
    s2pt = S2PTProtection(S2PTSpec(), intercept_iommu=True)
    s2pt.protect(SECRET)
    with pytest.raises(DMAViolation):
        s2pt.check_dma(AddrRange(9 * MiB, 64), "rogue-nic")
    # Every intercepted operation is a privileged-monitor trap (the TCB
    # and overhead cost the paper cites).
    assert s2pt.iommu_traps == 1


def test_s2pt_page_granular_no_contiguity_requirement():
    """Unlike the TZASC, S2PT protects arbitrary scattered pages."""
    s2pt = S2PTProtection(S2PTSpec())
    s2pt.protect(AddrRange(1 * MiB, 4096))
    s2pt.protect(AddrRange(5 * MiB, 4096))  # not adjacent — fine
    with pytest.raises(AccessDenied):
        s2pt.check_cpu(AddrRange(5 * MiB, 16), N)


def test_unprotect_disables_everything():
    s2pt = S2PTProtection(S2PTSpec())
    s2pt.protect(SECRET)
    s2pt.unprotect_all()
    s2pt.check_cpu(AddrRange(9 * MiB, 64), N)
    assert not s2pt.state.enabled


def test_tzasc_blocks_the_same_dma_attack():
    """Control: the design TZ-LLM chose stops the DMA attack cold."""
    from repro.hw import TZASC

    tzasc = TZASC()
    tzasc.configure(S, 0, SECRET.base, SECRET.size)
    with pytest.raises(DMAViolation):
        tzasc.check_dma(AddrRange(9 * MiB, 64), "rogue-nic")
