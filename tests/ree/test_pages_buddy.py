"""Unit tests for the frame database and buddy allocator."""

import pytest

from repro.config import PAGE_SIZE
from repro.errors import ConfigurationError, MemoryError_, OutOfMemory
from repro.ree.buddy import BuddyAllocator
from repro.ree.pages import FrameDB, FrameState

PG = PAGE_SIZE


def make_db(n_frames=64, granule=PG):
    return FrameDB(n_frames * granule, granule)


def make_buddy(db):
    buddy = BuddyAllocator(db)
    buddy.finalize()
    return buddy


def test_framedb_validates_geometry():
    with pytest.raises(ConfigurationError):
        FrameDB(100, PG)  # not a granule multiple
    with pytest.raises(ConfigurationError):
        FrameDB(PG * 4, granule=100)  # granule not page multiple


def test_claim_and_release_roundtrip():
    db = make_db()
    alloc = db.claim([1, 2, 3], movable=True, tag="t")
    assert db.state(2) is FrameState.MOVABLE
    assert db.owner(2) is alloc
    db.release(alloc)
    assert db.state(2) is FrameState.FREE
    assert db.owner(2) is None
    with pytest.raises(MemoryError_):
        db.release(alloc)  # double free


def test_claim_occupied_frame_rejected():
    db = make_db()
    db.claim([5], movable=False, tag="a")
    with pytest.raises(MemoryError_):
        db.claim([5], movable=True, tag="b")


def test_move_frame_retargets_allocation():
    db = make_db()
    alloc = db.claim([10], movable=True, tag="app")
    db.move_frame(alloc, 10, 20)
    assert db.state(10) is FrameState.FREE
    assert db.state(20) is FrameState.MOVABLE
    assert alloc.owns(20) and not alloc.owns(10)


def test_move_unmovable_rejected():
    db = make_db()
    alloc = db.claim([10], movable=False, tag="kernel")
    with pytest.raises(MemoryError_):
        db.move_frame(alloc, 10, 20)


def test_release_frames_partial():
    db = make_db()
    alloc = db.claim([1, 2, 3, 4], movable=False, tag="x")
    db.release_frames(alloc, [3, 4])
    assert alloc.n_frames == 2
    assert db.state(3) is FrameState.FREE
    db.release_frames(alloc, [1, 2])
    assert alloc.freed


def test_buddy_prefers_outside_cma_when_plentiful():
    db = make_db(64)
    buddy = BuddyAllocator(db)

    class FakeCMA:
        start_frame, end_frame = 48, 64
        free_frames = 16

        def spill_frames(self, count):
            raise AssertionError("should not spill")

    buddy.attach_cma(FakeCMA())
    buddy.finalize()
    # Outside free (48) minus the request (16) still exceeds CMA free
    # (16), so the balancing heuristic stays out of the region.
    alloc = buddy.allocate(16, movable=True)
    assert max(alloc.frames) < 48


def test_buddy_balances_into_cma_when_it_dominates_free_memory():
    db = make_db(64)
    buddy = BuddyAllocator(db)

    class FakeCMA:
        start_frame, end_frame = 16, 64
        free_frames = 48

        def __init__(self):
            self.given = []

        def spill_frames(self, count):
            take = list(range(self.end_frame - len(self.given) - count,
                              self.end_frame - len(self.given)))
            self.given.extend(take)
            FakeCMA.free_frames -= count
            return take

    fake = FakeCMA()
    buddy.attach_cma(fake)
    buddy.finalize()
    alloc = buddy.allocate(32, movable=True)
    # CMA held 48 of 64 free frames: the movable allocation draws on it.
    assert any(f >= 16 for f in alloc.frames)
    assert fake.given


def test_buddy_unmovable_never_spills():
    db = make_db(64)
    buddy = BuddyAllocator(db)

    class FakeCMA:
        start_frame, end_frame = 32, 64
        free_frames = 32

        def spill_frames(self, count):
            raise AssertionError("unmovable must not spill")

    buddy.attach_cma(FakeCMA())
    buddy.finalize()
    buddy.allocate(32, movable=False)  # exactly fills outside
    with pytest.raises(OutOfMemory):
        buddy.allocate(1, movable=False)


def test_buddy_oom_reports_availability():
    db = make_db(8)
    buddy = make_buddy(db)
    buddy.allocate(8, movable=True)
    with pytest.raises(OutOfMemory):
        buddy.allocate(1, movable=True)


def test_buddy_free_returns_frames():
    db = make_db(8)
    buddy = make_buddy(db)
    a = buddy.allocate(8, movable=True)
    buddy.free(a)
    b = buddy.allocate(8, movable=True)
    assert b.n_frames == 8


def test_buddy_alloc_seconds_linear():
    from repro.config import MemorySpec

    db = make_db(8)
    buddy = make_buddy(db)
    spec = MemorySpec()
    assert buddy.alloc_seconds(2 * spec.buddy_alloc_bw, spec) == pytest.approx(2.0)


def test_buddy_lowest_index_first_determinism():
    db = make_db(16)
    buddy = make_buddy(db)
    a = buddy.allocate(4, movable=True)
    assert sorted(a.frames) == [0, 1, 2, 3]
    buddy.free(a)
    b = buddy.allocate(4, movable=True)
    assert sorted(b.frames) == [0, 1, 2, 3]
