"""Tests for the REE NPU driver's power management (control plane)."""

import pytest

from repro.config import MiB, RK3588
from repro.hw import AddrRange, NPUJob, World
from repro.stack import build_stack


def make_job(duration=1e-3):
    return NPUJob(
        duration=duration,
        commands=AddrRange(0, 64),
        io_pagetable=AddrRange(4096, 64),
        inputs=[AddrRange(8192, 64)],
        outputs=[AddrRange(12288, 64)],
    )


@pytest.fixture
def stack():
    return build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)


def test_device_powers_down_after_idle(stack):
    sim = stack.sim
    done = stack.ree_npu.submit(make_job())
    sim.run_until(done)
    assert stack.board.npu.powered
    sim.run(until=sim.now + 0.2)  # longer than the autosuspend timeout
    assert not stack.board.npu.powered


def test_next_job_powers_device_back_up(stack):
    sim = stack.sim
    sim.run_until(stack.ree_npu.submit(make_job()))
    sim.run(until=sim.now + 0.2)
    assert not stack.board.npu.powered
    t0 = sim.now
    done = stack.ree_npu.submit(make_job(duration=2e-3))
    sim.run_until(done)
    assert stack.board.npu.powered
    assert stack.ree_npu.power_cycles == 1
    # Wake cost charged before the job ran.
    expected = stack.ree_npu.POWER_UP_TIME + 2e-3 + stack.spec.npu.job_launch_latency
    assert sim.now - t0 == pytest.approx(expected, rel=0.05)


def test_back_to_back_jobs_pay_no_wake_cost(stack):
    sim = stack.sim
    for _ in range(3):
        sim.run_until(stack.ree_npu.submit(make_job()))
    assert stack.ree_npu.power_cycles == 0
    assert stack.ree_npu.power_up_time_total == 0.0


def test_secure_jobs_also_wake_the_device(stack):
    sim = stack.sim
    stack.board.tzasc.configure(World.SECURE, 0, 16 * MiB, 4 * MiB)
    stack.tee_npu.allowed_slots = [0]
    sim.run_until(stack.ree_npu.submit(make_job()))
    sim.run(until=sim.now + 0.2)
    assert not stack.board.npu.powered

    def secure():
        job = NPUJob(
            duration=1e-3,
            commands=AddrRange(16 * MiB, 64),
            io_pagetable=AddrRange(16 * MiB + 4096, 64),
            inputs=[AddrRange(16 * MiB + 8192, 64)],
            outputs=[AddrRange(16 * MiB + 12288, 64)],
        )
        yield from stack.tee_npu.submit_secure_job(job)

    proc = sim.process(secure())
    sim.run_until(proc)
    assert stack.tee_npu.secure_jobs_completed == 1
    assert stack.ree_npu.power_cycles == 1


def test_power_management_can_be_disabled():
    stack = build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)
    stack.ree_npu.power_management = False
    sim = stack.sim
    sim.run_until(stack.ree_npu.submit(make_job()))
    sim.run(until=sim.now + 1.0)
    # The governor was started but never re-armed without activity kicks;
    # with the flag cleared the device stays up after the last check.
    assert stack.board.npu.jobs_completed == 1
