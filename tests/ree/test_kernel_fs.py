"""Unit tests for the REE kernel wiring, filesystem, and S2PT model."""

import pytest

from repro.config import RK3588, PAGE_SIZE, S2PTSpec
from repro.errors import ConfigurationError, OutOfMemory, StorageError
from repro.hw import Board
from repro.ree.kernel import REEKernel
from repro.ree.s2pt import S2PTState, s2pt_slowdown
from repro.sim import Simulator

PG = PAGE_SIZE


def make_kernel(total_frames=128, os_footprint=8 * PG):
    sim = Simulator()
    board = Board(sim, RK3588.with_memory(total_frames * PG))
    kernel = REEKernel(sim, board, granule=PG, os_footprint=os_footprint)
    return sim, kernel


def test_boot_charges_os_footprint():
    _sim, kernel = make_kernel(os_footprint=8 * PG)
    kernel.boot()
    assert kernel.used_bytes == 8 * PG
    assert kernel.memory_pressure() == pytest.approx(8 / 128)


def test_cma_reservations_stack_downward():
    _sim, kernel = make_kernel()
    a = kernel.reserve_cma("a", 16 * PG)
    b = kernel.reserve_cma("b", 16 * PG)
    assert a.start_frame == 112
    assert b.start_frame == 96
    kernel.boot()
    with pytest.raises(ConfigurationError):
        kernel.reserve_cma("c", PG)


def test_duplicate_cma_name_rejected():
    _sim, kernel = make_kernel()
    kernel.reserve_cma("a", PG)
    with pytest.raises(ConfigurationError):
        kernel.reserve_cma("a", PG)


def test_cma_too_large_rejected():
    _sim, kernel = make_kernel(total_frames=16)
    with pytest.raises(OutOfMemory):
        kernel.reserve_cma("huge", 32 * PG)


def test_allocation_requires_boot():
    _sim, kernel = make_kernel()
    with pytest.raises(ConfigurationError):
        kernel.map_anonymous(PG)


def test_alloc_timed_charges_buddy_rate():
    sim, kernel = make_kernel(os_footprint=0)
    kernel.boot()
    proc = sim.process(kernel.alloc_timed(64 * PG))
    alloc = sim.run_until(proc)
    assert alloc.n_frames == 64
    assert sim.now == pytest.approx(64 * PG / kernel.spec.memory.buddy_alloc_bw)


def test_free_bytes_tracks_allocations():
    _sim, kernel = make_kernel(os_footprint=0)
    kernel.boot()
    before = kernel.free_bytes
    alloc = kernel.map_anonymous(10 * PG)
    assert kernel.free_bytes == before - 10 * PG
    kernel.free(alloc)
    assert kernel.free_bytes == before


# ---------------------------------------------------------------------------
# filesystem
# ---------------------------------------------------------------------------
def test_fs_create_read_roundtrip():
    sim, kernel = make_kernel()
    kernel.boot()
    kernel.fs.create("/models/m.gguf", b"0123456789")

    def proc():
        data = yield from kernel.fs.read("/models/m.gguf", 2, 5)
        return data

    done = sim.process(proc())
    assert sim.run_until(done) == b"23456"
    assert kernel.fs.stat("/models/m.gguf") == 10


def test_fs_async_reads_overlap():
    sim, kernel = make_kernel()
    kernel.boot()
    kernel.fs.create("/a", b"x" * 1000)
    kernel.fs.create("/b", b"y" * 1000)

    def proc():
        first = kernel.fs.read_async("/a", 0, 1000)
        second = kernel.fs.read_async("/b", 0, 1000)
        a = yield first
        b = yield second
        return a, b

    done = sim.process(proc())
    a, b = sim.run_until(done)
    assert (a, b) == (b"x" * 1000, b"y" * 1000)
    assert kernel.fs.aio_peak == 2


def test_fs_tamper_hook_corrupts_reads():
    sim, kernel = make_kernel()
    kernel.boot()
    kernel.fs.create("/m", b"honest-bytes")
    kernel.fs.tamper_hook = lambda path, offset, data: b"forged!" + data[7:]

    def proc():
        data = yield from kernel.fs.read("/m", 0, 12)
        return data

    done = sim.process(proc())
    assert sim.run_until(done)[:7] == b"forged!"


def test_fs_missing_file_rejected():
    sim, kernel = make_kernel()
    kernel.boot()
    with pytest.raises(StorageError):
        kernel.fs.stat("/ghost")


# ---------------------------------------------------------------------------
# S2PT model
# ---------------------------------------------------------------------------
def test_s2pt_disabled_no_overhead():
    assert s2pt_slowdown(1.0, S2PTState(enabled=False), S2PTSpec()) == 1.0


def test_s2pt_fragmented_hits_paper_max():
    spec = S2PTSpec()
    worst = s2pt_slowdown(1.0, S2PTState(enabled=True, fragmented=True), spec)
    assert worst == pytest.approx(1.098)


def test_s2pt_huge_pages_much_cheaper():
    spec = S2PTSpec()
    frag = s2pt_slowdown(0.5, S2PTState(enabled=True, fragmented=True), spec)
    huge = s2pt_slowdown(0.5, S2PTState(enabled=True, fragmented=False), spec)
    assert huge < frag


def test_s2pt_intensity_bounds_checked():
    with pytest.raises(ConfigurationError):
        s2pt_slowdown(1.5, S2PTState(enabled=True), S2PTSpec())
