"""Tests for the REE time-sliced scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.ree.scheduler import REEScheduler
from repro.sim import Simulator


def compute_thread(seconds, chunks=1):
    for _ in range(chunks):
        yield ("compute", seconds / chunks)
    return seconds


def test_single_thread_runs_to_completion():
    sim = Simulator()
    sched = REEScheduler(sim, n_cores=1)
    t = sched.spawn(compute_thread(0.05), name="t")
    sim.run_until(t.done)
    assert t.finished
    assert t.result == 0.05
    assert t.cpu_time == pytest.approx(0.05)


def test_two_threads_share_one_core_fairly():
    sim = Simulator()
    sched = REEScheduler(sim, n_cores=1, time_slice=1e-3)
    a = sched.spawn(compute_thread(0.02), name="a")
    b = sched.spawn(compute_thread(0.02), name="b")
    sim.run_until(a.done)
    sim.run_until(b.done)
    # Total wall time = 0.04 on one core; both finish near the end
    # (interleaved), not one after the other.
    assert sim.now == pytest.approx(0.04, rel=0.05)
    assert abs(a.done.value - b.done.value) < 1e-9  # same compute demand


def test_four_cores_run_four_threads_in_parallel():
    sim = Simulator()
    sched = REEScheduler(sim, n_cores=4)
    threads = [sched.spawn(compute_thread(0.03), name="t%d" % i) for i in range(4)]
    for t in threads:
        sim.run_until(t.done)
    assert sim.now == pytest.approx(0.03, rel=0.01)


def test_blocking_on_event_releases_the_core():
    sim = Simulator()
    sched = REEScheduler(sim, n_cores=1, time_slice=1e-3)
    gate = sim.event()

    def blocker():
        yield ("compute", 0.001)
        yield gate
        yield ("compute", 0.001)
        return "done"

    blocked = sched.spawn(blocker(), name="blocked")
    runner = sched.spawn(compute_thread(0.01), name="runner")

    def opener():
        yield sim.timeout(0.05)
        gate.succeed()

    sim.process(opener())
    sim.run_until(blocked.done)
    assert blocked.result == "done"
    assert blocked.wait_time == pytest.approx(0.05 - 0.001, rel=0.1)
    # The runner was not starved by the blocked thread.
    assert runner.done.triggered
    assert runner.done.value == 0.01


def test_malicious_order_hook_permutes_dispatch():
    sim = Simulator()
    sched = REEScheduler(sim, n_cores=1, time_slice=1e-3)
    order = []

    def tagged(tag):
        yield ("compute", 1e-3)
        order.append(tag)

    sched.set_malicious_order(lambda q: list(reversed(q)))
    first = sched.spawn(tagged("first"), name="first")
    second = sched.spawn(tagged("second"), name="second")
    sim.run_until(first.done)
    sim.run_until(second.done)
    assert order == ["second", "first"]  # the attacker reversed them


def test_order_hook_must_be_a_permutation():
    sim = Simulator()
    sched = REEScheduler(sim, n_cores=1)
    sched.set_malicious_order(lambda q: q[:-1])  # drops a thread
    sched.spawn(compute_thread(0.01))
    sched.spawn(compute_thread(0.01))
    with pytest.raises(ConfigurationError):
        sim.run()


def test_invalid_yield_rejected():
    sim = Simulator()
    sched = REEScheduler(sim, n_cores=1)

    def broken():
        yield 42

    sched.spawn(broken())
    with pytest.raises(ConfigurationError):
        sim.run()


def test_bad_geometry_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        REEScheduler(sim, n_cores=0)
    with pytest.raises(ConfigurationError):
        REEScheduler(sim, time_slice=0)


def test_malicious_schedule_cannot_break_tee_ordering():
    """End-to-end §3.2/§6: shadow threads dispatched maliciously still
    observe TEE-enforced ordering through a TEE condition variable."""
    from repro.tee import TEECondition

    sim = Simulator()
    sched = REEScheduler(sim, n_cores=2, time_slice=1e-3)
    sched.set_malicious_order(lambda q: list(reversed(q)))
    produced = TEECondition(sim)
    log = []

    def producer():
        yield ("compute", 0.01)
        log.append("produced")
        produced.notify_all()

    def consumer():
        yield produced.wait()  # blocks inside the TEE
        yield ("compute", 0.001)
        log.append("consumed")

    consumer_thread = sched.spawn(consumer(), name="consumer")
    sched.spawn(producer(), name="producer")
    sim.run_until(consumer_thread.done)
    assert log == ["produced", "consumed"]
