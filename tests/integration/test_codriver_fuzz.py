"""Property-based fuzzing of the co-driver protocol.

Random interleavings of secure and non-secure NPU jobs (with random
durations and submission gaps) must always: complete every job, keep the
sequence counter consistent, leave the device in non-secure mode, and
never fault a legitimate job.  A second property drives random *attack*
schedules and requires every illegitimate take-over to be rejected
without wedging subsequent legitimate traffic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MiB, RK3588
from repro.errors import IagoViolation
from repro.hw import AddrRange, NPUJob, World
from repro.stack import build_stack

S = World.SECURE
N = World.NONSECURE


def make_stack():
    stack = build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)
    stack.board.tzasc.configure(S, 0, 16 * MiB, 4 * MiB)
    stack.tee_npu.allowed_slots = [0]
    return stack


def secure_job(duration):
    base = 16 * MiB
    return NPUJob(
        duration=duration,
        commands=AddrRange(base, 64),
        io_pagetable=AddrRange(base + 4096, 64),
        inputs=[AddrRange(base + 8192, 64)],
        outputs=[AddrRange(base + 12288, 64)],
    )


def nonsecure_job(duration):
    return NPUJob(
        duration=duration,
        commands=AddrRange(0, 64),
        io_pagetable=AddrRange(4096, 64),
        inputs=[AddrRange(8192, 64)],
        outputs=[AddrRange(12288, 64)],
    )


@given(
    schedule=st.lists(
        st.tuples(
            st.booleans(),  # secure?
            st.floats(min_value=0.0005, max_value=0.02),  # duration
            st.floats(min_value=0.0, max_value=0.01),  # gap before submit
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=20, deadline=None)
def test_random_interleavings_all_complete(schedule):
    stack = make_stack()
    sim = stack.sim
    outcomes = []

    def submitter():
        waits = []
        for secure, duration, gap in schedule:
            if gap:
                yield sim.timeout(gap)
            if secure:
                record = stack.tee_npu.init_job(secure_job(duration))
                yield from stack.tee_npu.issue_job(record)
                waits.append(("secure", record.completion))
            else:
                waits.append(("ree", stack.ree_npu.submit(nonsecure_job(duration))))
        for kind, event in waits:
            result = yield event
            outcomes.append(kind)

    done = sim.process(submitter())
    sim.run_until(done)
    n_secure = sum(1 for s, _d, _g in schedule if s)
    assert len(outcomes) == len(schedule)
    assert stack.tee_npu.secure_jobs_completed == n_secure
    assert stack.tee_npu._exec_seq == n_secure
    assert stack.board.npu.jobs_faulted == 0
    assert stack.board.npu.jobs_completed == len(schedule)
    # The device always ends non-secure with no dangling grants.
    assert stack.board.tzpc.device_world("npu") is N
    assert stack.board.gic.line_world(stack.board.npu.irq) is N
    assert stack.board.tzasc.region(0).allowed_devices == set()


@given(
    attacks=st.lists(
        st.sampled_from(["replay", "forge", "wrong-seq"]), min_size=1, max_size=5
    )
)
@settings(max_examples=15, deadline=None)
def test_random_attacks_rejected_without_wedging(attacks):
    stack = make_stack()
    sim = stack.sim

    def run_legit():
        yield from stack.tee_npu.submit_secure_job(secure_job(0.002))

    proc = sim.process(run_legit())
    sim.run_until(proc)
    last_record = next(iter(stack.tee_npu._records.values()))

    rejected = 0
    for attack in attacks:
        if attack == "replay":
            gen = stack.ree_npu.attack_replay_take_over(
                last_record.shadow_id, last_record.seq
            )
        elif attack == "forge":
            gen = stack.ree_npu.attack_forge_take_over(999, stack.tee_npu._exec_seq)
        else:
            gen = stack.ree_npu.attack_forge_take_over(
                last_record.shadow_id, last_record.seq + 7
            )
        attack_proc = sim.process(gen)
        with pytest.raises(IagoViolation):
            sim.run_until(attack_proc)
        rejected += 1
    assert stack.tee_npu.take_over_rejections == rejected
    # Legitimate traffic still flows after every attack.
    proc = sim.process(run_legit())
    sim.run_until(proc)
    assert stack.tee_npu.secure_jobs_completed == 2
