"""§7.1.2's omitted data: decode speed is stable across lengths.

"Results under other prompt and output lengths are similar and are
omitted for brevity" — pinned here as a regression property: tokens/s
varies only marginally with prompt length (KV reads are tiny next to
weight streaming) and with output length (steady-state behaviour).
"""

import pytest

from repro.core import TZLLM
from repro.llm import TINYLLAMA


@pytest.fixture(scope="module")
def system():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    system.run_infer(16, 0)  # cache fully resident
    return system


def test_decode_speed_stable_across_prompt_lengths(system):
    speeds = [
        system.run_infer(T, 12).decode_tokens_per_second for T in (32, 128, 512)
    ]
    assert max(speeds) / min(speeds) < 1.15


def test_decode_speed_stable_across_output_lengths(system):
    speeds = [
        system.run_infer(128, n).decode_tokens_per_second for n in (4, 16, 48)
    ]
    assert max(speeds) / min(speeds) < 1.15


def test_per_token_latency_grows_slowly_with_kv(system):
    record = system.run_infer(128, 48)
    steps = record.decode.step_times
    # Monotone-ish growth from KV reads, but bounded: the last token costs
    # at most a few percent more than the first.
    assert steps[-1] >= steps[0]
    assert steps[-1] < 1.10 * steps[0]
