"""End-to-end security analysis (§6) as executable attacks.

Every attack from the paper's security analysis runs against a fully
built TZ-LLM system mid-inference state and must be *functionally*
defeated — not by convention, but by a raised SecurityViolation or by
the attacker observing only ciphertext/zeros.
"""

import pytest

from repro.core import TZLLM
from repro.errors import (
    AccessDenied,
    DMAViolation,
    IagoViolation,
    SecurityViolation,
)
from repro.hw import World
from repro.llm import TINYLLAMA, container_path, tensor_plaintext
from repro.tee import TrustedApplication

N = World.NONSECURE
S = World.SECURE


@pytest.fixture(scope="module")
def system():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)  # cold start; leaves all parameters cached
    system.run_infer(32, 0)
    return system


def test_flash_dump_reveals_only_ciphertext(system):
    """Attacker reads the model file from flash offline (§6 direct access)."""
    container = system.container
    tensor = container.tensor("blk.0.attn")
    blob = system.stack.board.flash.peek(
        "fs:" + container_path(TINYLLAMA.model_id),
        container.file_offset(tensor),
        tensor.payload_bytes,
    )
    assert blob != tensor_plaintext(TINYLLAMA.model_id, tensor)


def test_ree_cpu_cannot_read_cached_parameters(system):
    """Compromised REE OS reads secure memory directly -> TZASC denies."""
    region = system.ta.params_region
    assert region.protected > 0  # parameters are cached in secure memory
    with pytest.raises(AccessDenied):
        system.stack.board.memory.cpu_read(region.base_addr, 64, N)
    # And the plaintext really is there for the TA (sanity: attack had a
    # real target).
    plaintext = system.stack.tee_os.ta_read(system.ta, region.base_addr, 64)
    first = system.container.tensors[0]
    assert plaintext == tensor_plaintext(TINYLLAMA.model_id, first)[:64]


def test_rogue_device_dma_denied(system):
    """Malicious peripheral DMAs into the parameter region (§6 DMA)."""
    region = system.ta.params_region
    with pytest.raises(DMAViolation):
        system.stack.board.memory.dma_read(region.base_addr, 64, "rogue-nic")
    with pytest.raises(DMAViolation):
        system.stack.board.memory.dma_write(region.base_addr, b"x" * 16, "rogue-nic")


def test_npu_dma_denied_outside_secure_job_window(system):
    """The NPU itself may not touch parameters between secure jobs."""
    region = system.ta.params_region
    with pytest.raises(DMAViolation):
        system.stack.board.memory.dma_read(region.base_addr, 64, "npu")


def test_malicious_ta_cannot_read_llm_memory(system):
    """Another TA in the TEE is not in the LLM TA's address space (§6)."""
    rogue = TrustedApplication("rogue-ta")
    system.stack.tee_os.install_ta(rogue)
    region = system.ta.params_region
    with pytest.raises(AccessDenied):
        system.stack.tee_os.ta_read(rogue, region.base_addr, 64)


def test_unauthorized_ta_cannot_unwrap_model_key(system):
    rogue = system.stack.tee_os.ta("rogue-ta")
    with pytest.raises(SecurityViolation):
        system.stack.tee_os.unwrap_key_for(
            rogue, system.container.wrapped_key, TINYLLAMA.model_id
        )


def test_forged_model_load_detected_by_checksum():
    """Model-loading Iago attack: the REE filesystem forges read results;
    the TA's ciphertext checksum catches it before decryption (§6)."""
    system = TZLLM(TINYLLAMA)
    system.run_infer(8, 0)
    path = container_path(TINYLLAMA.model_id)

    def forge(read_path, offset, data):
        if read_path == path and len(data) >= 64:
            return b"\xde\xad" * (len(data) // 2) + data[2 * (len(data) // 2):]
        return data

    system.stack.kernel.fs.tamper_hook = forge
    with pytest.raises(IagoViolation, match="checksum"):
        system.run_infer(32, 0)


def test_forged_cma_address_detected():
    """CMA Iago attack at the system level."""
    system = TZLLM(TINYLLAMA)
    system.run_infer(8, 0)
    system.stack.tz_driver.alloc_result_hook = (
        lambda addr: addr + system.stack.kernel.db.granule
    )
    with pytest.raises(IagoViolation, match="contiguous"):
        system.run_infer(32, 0)


def test_released_secure_memory_is_scrubbed():
    """Shrink must clear plaintext before the REE regains access (§4.2)."""
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    system.run_infer(16, 0)
    region = system.ta.params_region
    base = region.base_addr
    assert region.protected > 0
    # Drop the whole cache (e.g. REE memory pressure).
    proc = system.sim.process(system.ta.revoke_cache(0))
    system.sim.run_until(proc)
    assert region.protected == 0
    leaked = system.stack.board.memory.cpu_read(base, 4096, N)
    assert leaked == b"\x00" * 4096


def test_hardware_key_unreadable_from_ree(system):
    with pytest.raises(SecurityViolation):
        system.stack.keystore.hardware_key(N)


def test_kv_cache_region_protected_during_inference():
    """Intermediate state (KV cache, activations) is also secure (§3.1)."""
    system = TZLLM(TINYLLAMA)
    system.run_infer(8, 0)
    sim = system.sim
    observed = {}

    def snoop():
        # Wait until mid-inference, then try to read the data region.
        yield sim.timeout(0.35)
        region = system.ta.data_region
        observed["protected"] = region.protected
        try:
            system.stack.board.memory.cpu_read(region.base_addr, 64, N)
            observed["read"] = "allowed"
        except AccessDenied:
            observed["read"] = "denied"

    sim.process(snoop())
    system.run_infer(64, 4)
    assert observed["protected"] > 0
    assert observed["read"] == "denied"
