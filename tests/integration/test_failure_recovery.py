"""Failure injection: the TA must survive mid-restoration faults.

A flash I/O error or a detected Iago attack aborts the pipeline; the TA
must release every transient byte (data region, ballooned-but-unprotected
tail, protected-but-untrusted parameters) and stay serviceable for the
next request.
"""

import pytest

from repro.core import TZLLM
from repro.errors import DeviceError, IagoViolation
from repro.llm import TINYLLAMA, container_path


@pytest.fixture
def system():
    system = TZLLM(TINYLLAMA, cache_fraction=0.5)
    system.run_infer(8, 0)  # cold start
    return system


def _fail_once_at(system, fail_offset_threshold):
    """Inject one I/O failure partway through the model file."""
    state = {"fired": False}
    path = container_path(TINYLLAMA.model_id)

    def hook(read_path, offset, size):
        if read_path == path and offset > fail_offset_threshold and not state["fired"]:
            state["fired"] = True
            return DeviceError("simulated NVMe read failure")
        return None

    system.stack.kernel.fs.fail_hook = hook
    return state


def test_flash_error_mid_restoration_surfaces_and_cleans_up(system):
    state = _fail_once_at(system, fail_offset_threshold=1000)
    with pytest.raises(DeviceError, match="NVMe"):
        system.run_infer(128, 0)
    assert state["fired"]
    # All transient memory was released.
    assert system.ta.params_region.allocated == 0
    assert system.ta.params_region.protected == 0
    assert system.ta.data_region.allocated == 0
    # The CMA regions are whole again.
    for region in system.stack.kernel.cma_regions.values():
        assert region.free_frames == region.n_frames


def test_ta_serves_requests_after_a_flash_error(system):
    _fail_once_at(system, fail_offset_threshold=1000)
    with pytest.raises(DeviceError):
        system.run_infer(128, 0)
    system.stack.kernel.fs.fail_hook = None
    record = system.run_infer(128, 4)
    assert record.ttft > 0
    assert len(record.decode.token_ids) == 4
    # The post-recovery run restored everything from scratch (no stale
    # "cache" of possibly-ciphertext groups survived the failure).
    assert record.cached_groups == 0


def test_ta_serves_requests_after_iago_attack_detected(system):
    path = container_path(TINYLLAMA.model_id)
    system.stack.kernel.fs.tamper_hook = lambda p, o, d: bytes(len(d)) if p == path else d
    with pytest.raises(IagoViolation):
        system.run_infer(64, 0)
    assert system.ta.params_region.allocated == 0
    system.stack.kernel.fs.tamper_hook = None
    record = system.run_infer(64, 2)
    assert record.decode.token_ids


def test_failure_does_not_leak_memory_across_many_attempts(system):
    path = container_path(TINYLLAMA.model_id)
    for _ in range(3):
        state = _fail_once_at(system, fail_offset_threshold=5000)
        with pytest.raises(DeviceError):
            system.run_infer(64, 0)
        system.stack.kernel.fs.fail_hook = None
    free = system.stack.kernel.free_bytes
    record = system.run_infer(64, 0)
    assert record.ttft > 0
    # After the final successful run + cache release, free memory returns
    # to within one cache prefix of the pre-run level.
    assert system.stack.kernel.free_bytes >= free - system.ta.params_region.protected - 2 ** 22
