"""Unit and property tests for the stream cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CryptoSpec, GB
from repro.crypto import KEY_SIZE, NONCE_SIZE, decrypt, decrypt_duration, encrypt, derive_key
from repro.errors import ConfigurationError

KEY = derive_key(b"seed", "test")
NONCE = b"n" * NONCE_SIZE


def test_roundtrip():
    ct = encrypt(KEY, NONCE, b"model parameters")
    assert ct != b"model parameters"
    assert decrypt(KEY, NONCE, ct) == b"model parameters"


def test_wrong_key_garbles():
    ct = encrypt(KEY, NONCE, b"model parameters")
    other = derive_key(b"seed", "other")
    assert decrypt(other, NONCE, ct) != b"model parameters"


def test_empty_plaintext():
    assert encrypt(KEY, NONCE, b"") == b""


def test_bad_key_and_nonce_rejected():
    with pytest.raises(ConfigurationError):
        encrypt(b"short", NONCE, b"x")
    with pytest.raises(ConfigurationError):
        encrypt(KEY, b"short", b"x")
    with pytest.raises(ConfigurationError):
        encrypt(KEY, NONCE, b"x", offset=-1)


@given(data=st.binary(max_size=300), cut=st.integers(min_value=0, max_value=300))
@settings(max_examples=60, deadline=None)
def test_seekable_chunked_equals_whole(data, cut):
    cut = min(cut, len(data))
    whole = encrypt(KEY, NONCE, data)
    part = encrypt(KEY, NONCE, data[:cut]) + encrypt(KEY, NONCE, data[cut:], offset=cut)
    assert part == whole


@given(data=st.binary(max_size=500), offset=st.integers(min_value=0, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_roundtrip_at_any_offset(data, offset):
    assert decrypt(KEY, NONCE, encrypt(KEY, NONCE, data, offset), offset) == data


@given(data=st.binary(min_size=32, max_size=200))
@settings(max_examples=30, deadline=None)
def test_ciphertext_differs_from_plaintext(data):
    # A keystream collision of 32+ bytes of zeros is cryptographically absurd.
    assert encrypt(KEY, NONCE, data) != data


def test_decrypt_duration_matches_paper_anchor():
    spec = CryptoSpec()
    # 8 GB over 4 big cores should be ~0.9 s (paper §2.3).
    assert decrypt_duration(8 * GB, 4, spec) == pytest.approx(0.9, rel=0.1)


def test_decrypt_duration_scales_inverse_with_threads():
    spec = CryptoSpec()
    one = decrypt_duration(1 * GB, 1, spec)
    four = decrypt_duration(1 * GB, 4, spec)
    assert one == pytest.approx(4 * four)


def test_decrypt_duration_rejects_zero_threads():
    with pytest.raises(ConfigurationError):
        decrypt_duration(1.0, 0, CryptoSpec())
