"""Unit tests for key wrapping and checksums."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    CHECKSUM_SIZE,
    HardwareKeyStore,
    checksum,
    derive_key,
    unwrap_model_key,
    verify,
    wrap_model_key,
)
from repro.errors import IntegrityError, SecurityViolation
from repro.hw import World


def test_hardware_key_secure_world_only():
    store = HardwareKeyStore(b"device-0001")
    key = store.hardware_key(World.SECURE)
    assert len(key) == 32
    with pytest.raises(SecurityViolation):
        store.hardware_key(World.NONSECURE)
    assert store.reads == 1


def test_hardware_key_is_device_unique():
    a = HardwareKeyStore(b"device-a").hardware_key(World.SECURE)
    b = HardwareKeyStore(b"device-b").hardware_key(World.SECURE)
    assert a != b


def test_wrap_unwrap_roundtrip():
    hw = derive_key(b"dev", "hw")
    model_key = derive_key(b"provider", "llama-3-8b")
    wrapped = wrap_model_key(hw, model_key, "llama-3-8b")
    assert wrapped != model_key
    assert unwrap_model_key(hw, wrapped, "llama-3-8b") == model_key


def test_unwrap_detects_tampering():
    hw = derive_key(b"dev", "hw")
    wrapped = bytearray(wrap_model_key(hw, derive_key(b"p", "m"), "m"))
    wrapped[0] ^= 0xFF
    with pytest.raises(IntegrityError):
        unwrap_model_key(hw, bytes(wrapped), "m")


def test_unwrap_wrong_model_id_rejected():
    hw = derive_key(b"dev", "hw")
    wrapped = wrap_model_key(hw, derive_key(b"p", "m"), "model-a")
    with pytest.raises(IntegrityError):
        unwrap_model_key(hw, wrapped, "model-b")


def test_unwrap_wrong_length_rejected():
    hw = derive_key(b"dev", "hw")
    with pytest.raises(IntegrityError):
        unwrap_model_key(hw, b"short", "m")


def test_checksum_properties():
    digest = checksum(b"chunk")
    assert len(digest) == CHECKSUM_SIZE
    assert verify(b"chunk", digest)
    assert not verify(b"chunk!", digest)


@given(data=st.binary(max_size=200), flip=st.integers(min_value=0, max_value=199))
@settings(max_examples=50, deadline=None)
def test_checksum_detects_any_single_bitflip(data, flip):
    if not data:
        return
    digest = checksum(data)
    index = flip % len(data)
    mutated = bytearray(data)
    mutated[index] ^= 0x01
    assert not verify(bytes(mutated), digest)
