"""The routing tier over *full-fidelity* TZLLM devices on one clock.

The surrogate makes fleet scale affordable; this test proves the tier
is not surrogate-only: two complete TZ-LLM platforms (boards, kernels,
TEE OSes, TAs) coexist in one simulator behind the same router, and
multi-turn session affinity works against real TA timing.
"""

import pytest

from repro.core.system import TZLLM
from repro.fleet import DeviceNode, FleetLoadGenerator, FleetRouter
from repro.llm import TINYLLAMA
from repro.obs import MetricsRegistry
from repro.sim import Simulator
from repro.workloads import FleetTenantSpec, generate_fleet_trace


@pytest.fixture(scope="module")
def router():
    sim = Simulator()
    registry = MetricsRegistry()
    devices = []
    for i in range(2):
        system = TZLLM(
            TINYLLAMA,
            sim=sim,
            device_name="dev%d" % i,
            cache_fraction=1.0,
        )
        devices.append(
            DeviceNode("dev%d" % i, system=system, registry=registry)
        )
    return FleetRouter(devices, policy="cache-aware", registry=registry)


def test_trace_replays_across_real_devices(router):
    trace = generate_fleet_trace(
        120.0,
        [
            FleetTenantSpec(
                "chat",
                TINYLLAMA.model_id,
                "interactive",
                sessions_per_hour=120.0,
                mean_turns=3.0,
                mean_think_time=5.0,
            )
        ],
        seed=5,
    )[:12]
    gen = FleetLoadGenerator(router, trace).run_blocking()
    summary = gen.summary()
    assert summary["completed"] == summary["admitted"] > 0
    assert summary["failed"] == 0
    assert summary["ttft_p99"] > 0
    # Both real platforms exist behind one rollup.
    health = router.health()
    assert set(health["devices"]) == {"dev0", "dev1"}
    assert health["healthy"]


def test_sessions_pin_to_real_devices(router):
    for session_id, device_id in router.pins.items():
        device = router.devices[device_id]
        assert session_id in device.sessions
