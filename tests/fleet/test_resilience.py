"""Fault-tolerance tier: lifecycle, probing, hedging, failover, re-warm."""

import pytest

from repro.config import RK3588
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import Fleet, HedgeBudget, ResilienceConfig
from repro.fleet.resilience import ATTESTING, DEGRADED, DOWN, REBOOTING, UP, DeviceLifecycle
from repro.llm import TINYLLAMA
from repro.obs import MetricsRegistry
from repro.sim import Simulator
from repro.workloads import generate_fault_schedule
from repro.workloads.fleet import FleetRequest


def _request(at=0.0, session="t/s1", context=0, new=32, out=4, priority="interactive"):
    return FleetRequest(
        at=at,
        tenant="t",
        session_id=session,
        turn=1,
        model_id=TINYLLAMA.model_id,
        priority=priority,
        prefix_id="",
        prefix_tokens=0,
        context_tokens=context,
        new_tokens=new,
        output_tokens=out,
    )


def _fleet(n=2, resilience=None, **kwargs):
    platforms = [("dev%d" % i, RK3588) for i in range(n)]
    return Fleet(
        platforms, [TINYLLAMA], policy="cache-aware", warm=True,
        resilience=resilience, **kwargs,
    )


# ---------------------------------------------------------------------------
# lifecycle state machine
# ---------------------------------------------------------------------------
def test_lifecycle_transitions_export_gauge_and_reject_illegal_edges():
    sim = Simulator()
    registry = MetricsRegistry()
    life = DeviceLifecycle(sim, "d0", registry=registry)
    gauge = registry.gauge("fleet_device_state")
    assert life.state == UP and gauge.value(device="d0") == 0
    life.to(DOWN, "crash")
    assert gauge.value(device="d0") == 2
    life.to(REBOOTING, "reboot")
    life.to(ATTESTING, "attest")
    life.to(UP, "attested")
    assert [s for _t, s, _r in life.transitions] == [DOWN, REBOOTING, ATTESTING, UP]
    with pytest.raises(ConfigurationError):
        life.to(ATTESTING, "nope")  # UP -> ATTESTING is not an edge
    assert (
        registry.counter("fleet_device_transitions_total").value(
            device="d0", state="up"
        )
        == 1
    )


def test_resilience_config_validation():
    with pytest.raises(ConfigurationError):
        ResilienceConfig(ewma_alpha=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(quarantine_factor=2.0, readmit_factor=3.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(probe_interval=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(max_failovers=-1)


# ---------------------------------------------------------------------------
# hedge budget
# ---------------------------------------------------------------------------
def test_hedge_budget_spends_and_refills_on_the_virtual_clock():
    sim = Simulator()
    budget = HedgeBudget(sim, capacity=2.0, refill_per_s=0.5)
    assert budget.take("a") and budget.take("a")
    assert not budget.take("a")  # empty
    assert budget.take("b")  # tenants are independent pools
    sim.run_until(sim.timeout(2.0))  # 2s * 0.5/s = 1 token back
    assert budget.take("a")
    assert not budget.take("a")
    assert budget.taken["a"] == 3 and budget.denied["a"] == 2


# ---------------------------------------------------------------------------
# crash -> DeviceLost -> free failover + session re-warm
# ---------------------------------------------------------------------------
def test_crash_fails_over_in_flight_request_and_charges_rewarm():
    fleet = _fleet(2, resilience=ResilienceConfig(hedging=False))
    ticket = fleet.route(_request(context=200, out=8))
    victim = fleet.device(ticket.device_id)
    assert fleet.router.pins["t/s1"] == victim.device_id
    victim.crash()
    fleet.router.handle_device_down(victim)
    assert "t/s1" not in fleet.router.pins  # pin cut loose at crash time
    fleet.sim.run_until(ticket.completion)
    assert ticket.done
    assert ticket.failovers == 1
    assert ticket.device_id != victim.device_id
    # Provenance: the first attempt died with the device.
    assert ticket.failures[0][1] == "DeviceLost"
    # The relaunch re-pinned the session and settled the re-warm debt
    # (the 200 context tokens the dead device's KV used to cover).
    assert fleet.router.pins["t/s1"] == ticket.device_id
    assert ticket.rewarm_tokens == 200
    assert fleet.registry.counter("fleet_rewarm_tokens_total").value() == 200
    assert fleet.registry.counter("fleet_failovers_total").value() == 1
    # Budget untouched: DeviceLost failover is the fleet's own fault.
    assert fleet.router.hedge_budget.taken == {}
    # The victim's caches were wiped with its secure world.
    assert victim.sessions == {} and victim.lifecycle.state == DOWN


def test_device_down_drains_queued_attempts_to_survivors():
    fleet = _fleet(2, resilience=ResilienceConfig(hedging=False))
    tickets = [
        fleet.route(_request(session="t/s%d" % i, out=2)) for i in range(8)
    ]
    victim_id = tickets[0].device_id
    victim = fleet.device(victim_id)
    assert victim.gateway.queue_depth > 0  # some attempts still queued
    victim.crash()
    fleet.router.handle_device_down(victim)
    assert fleet.registry.counter("fleet_drained_total").value(device=victim_id) > 0
    for ticket in tickets:
        if not ticket.completion.triggered:
            fleet.sim.run_until(ticket.completion)
        assert ticket.state in ("done", "failed")  # liveness: all terminal
    survivors = {t.device_id for t in tickets if t.done}
    assert victim_id not in survivors


# ---------------------------------------------------------------------------
# hedging
# ---------------------------------------------------------------------------
def test_hedge_beats_gray_primary_and_cancels_loser():
    fleet = _fleet(2, resilience=ResilienceConfig(hedge_delay=0.2))
    fleet.device("dev0").set_slowdown(50.0)  # gray: slow, no errors
    ticket = fleet.route(_request(out=8))
    assert ticket.device_id == "dev0"  # tie-break routed onto the gray device
    fleet.sim.run_until(ticket.completion)
    assert ticket.done and ticket.hedges == 1
    assert ticket.winner.hedge and ticket.winner.device_id == "dev1"
    assert fleet.router.hedge_wins == 1
    assert fleet.registry.counter("fleet_hedge_wins_total").value() == 1
    # The session follows the winner's KV.
    assert fleet.router.pins["t/s1"] == "dev1"
    # SLO accounting is ticket-level: one verdict, not two.
    assert fleet.registry.counter("fleet_slo_requests_total").value() == 1
    # The gray-device attempt was told to stand down.
    loser = ticket.attempts[0]
    assert loser.cancel_requested and loser.cancel_reason == "hedge-loser"
    fleet.sim.run(until=fleet.sim.now + 600.0)
    assert loser.state == "cancelled"


def test_hedge_budget_exhaustion_denies_hedges():
    cfg = ResilienceConfig(
        hedge_delay=0.05, hedge_budget_capacity=1.0, hedge_budget_refill_per_s=0.0
    )
    fleet = _fleet(2, resilience=cfg)
    fleet.device("dev0").set_slowdown(50.0)
    first = fleet.route(_request(session="t/s1", out=2))
    fleet.sim.run_until(first.completion)
    assert first.hedges == 1  # spent the only token
    second = fleet.route(_request(session="t/s2", out=2))
    fleet.sim.run_until(second.completion)
    assert second.hedges == 0
    assert fleet.registry.counter("fleet_hedge_denied_total").value() == 1


def test_hedging_never_fires_when_resilience_is_off():
    fleet = _fleet(2)
    fleet.device("dev0").set_slowdown(50.0)
    ticket = fleet.route(_request(out=2))
    fleet.sim.run_until(ticket.completion)
    assert ticket.done and ticket.hedges == 0 and len(ticket.attempts) == 1


# ---------------------------------------------------------------------------
# active probing: gray quarantine and re-admission
# ---------------------------------------------------------------------------
def test_prober_quarantines_gray_device_and_readmits_after_recovery():
    fleet = _fleet(2, resilience=ResilienceConfig(hedging=False))
    fleet.start_resilience(until=300.0)
    gray = fleet.device("dev0")
    gray.set_slowdown(10.0)
    fleet.sim.run(until=10.0)
    assert gray.lifecycle.state == DEGRADED
    assert not gray.routable
    # A quarantined device is out of the eligible set entirely.
    assert "dev0" not in {
        d.device_id for d in fleet.router.eligible(_request(session="t/sx"))
    }
    # New traffic lands on the healthy device, and a pin held by the
    # quarantined device dissolves with reason "quarantined".
    fleet.router.pins["t/old"] = "dev0"
    routed = fleet.route(_request(session="t/old", at=10.0))
    assert routed.device_id == "dev1"
    assert (
        fleet.registry.counter("fleet_sessions_rebalanced").value(reason="quarantined")
        == 1
    )
    fleet.sim.run_until(routed.completion)
    gray.set_slowdown(1.0)  # the gray episode ends
    fleet.sim.run(until=60.0)
    assert gray.lifecycle.state == UP and gray.routable
    probes = fleet.registry.counter("fleet_probes_total")
    assert probes.value(device="dev0", outcome="ok") > 0


# ---------------------------------------------------------------------------
# seeded fault driver: crash + attestation reboot loop
# ---------------------------------------------------------------------------
def test_attest_failure_reboot_loop_holds_traffic_and_drains_once():
    fleet = _fleet(2, resilience=ResilienceConfig(hedging=False))
    warmup = fleet.route(_request(session="t/s1", out=2))
    fleet.sim.run_until(warmup.completion)
    victim_id = warmup.device_id
    plan = FaultPlan(
        11,
        [
            FaultSpec(
                "fleet.device_crash",
                probability=1.0,
                window=(1.0, 2.5),
                max_fires=1,
                target=victim_id,
            ),
            FaultSpec(
                "fleet.attest_fail", probability=1.0, max_fires=3, target=victim_id
            ),
        ],
    )
    fleet.start_resilience(until=300.0, plan=plan)
    victim = fleet.device(victim_id)
    # Walk the sim forward; while the device is rebooting/attesting it
    # must never be eligible for new work.
    for horizon in (5.0, 15.0, 25.0, 35.0):
        fleet.sim.run(until=horizon)
        if victim.lifecycle.state in (DOWN, REBOOTING, ATTESTING):
            assert victim_id not in {
                d.device_id
                for d in fleet.router.eligible(_request(session="t/probe"))
            }
    fleet.sim.run(until=120.0)
    assert victim.lifecycle.state == UP  # the 4th attestation succeeded
    assert victim.lifecycle.attest_failures == 3
    assert victim.lifecycle.reboots == 4  # initial + one per attest failure
    assert victim.lifecycle.crashes == 1
    assert victim.lifecycle.drains == 1  # sessions drained exactly once
    # Back in rotation: it can serve again.
    assert victim_id in {
        d.device_id for d in fleet.router.eligible(_request(session="t/back"))
    }


def test_fault_schedule_is_deterministic_and_validated():
    ids = ["d%d" % i for i in range(8)]
    a = generate_fault_schedule(3600.0, ids, seed=5, crashes=2, grays=1)
    b = generate_fault_schedule(3600.0, ids, seed=5, crashes=2, grays=1)
    assert a == b
    assert len(a) == 3
    crash_targets = [s.target for s in a if s.site == "fleet.device_crash"]
    gray_targets = [s.target for s in a if s.site == "fleet.gray_slowdown"]
    assert len(crash_targets) == 2 and len(gray_targets) == 1
    assert len(set(crash_targets + gray_targets)) == 3  # distinct victims
    for spec in a:
        assert spec.target in ids and spec.max_fires == 1
        assert 0.0 < spec.window[0] < 3600.0
    assert a != generate_fault_schedule(3600.0, ids, seed=6, crashes=2, grays=1)
    with pytest.raises(ConfigurationError):
        generate_fault_schedule(3600.0, ids[:2], crashes=2, grays=1)
    with pytest.raises(ConfigurationError):
        generate_fault_schedule(-1.0, ids)
