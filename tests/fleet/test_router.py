"""Routing-tier behaviour: policies, spillover, shedding, rebalance."""

import pytest

from repro.config import RK3588
from repro.fleet import (
    CacheAwarePolicy,
    DeviceNode,
    Fleet,
    FleetLoadGenerator,
    FleetRouter,
    FleetSaturated,
    make_policy,
    scale_platform,
)
from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA
from repro.obs import MetricsRegistry
from repro.sim import Simulator
from repro.workloads import FleetTenantSpec, generate_fleet_trace
from repro.workloads.fleet import FleetRequest


def replace_model(request, model_id):
    import dataclasses

    return dataclasses.replace(request, model_id=model_id)


def _request(at=0.0, session="t/s1", prefix="", prefix_tokens=0, context=0, new=32, out=4):
    return FleetRequest(
        at=at,
        tenant="t",
        session_id=session,
        turn=1,
        model_id=TINYLLAMA.model_id,
        priority="interactive",
        prefix_id=prefix,
        prefix_tokens=prefix_tokens,
        context_tokens=context,
        new_tokens=new,
        output_tokens=out,
    )


def _fleet(n=2, policy="cache-aware", **kwargs):
    platforms = [("dev%d" % i, RK3588) for i in range(n)]
    return Fleet(platforms, [TINYLLAMA], policy=policy, warm=True, **kwargs)


def test_session_affinity_returns_turns_to_kv_holder():
    fleet = _fleet(3, policy="session-affinity")
    first = fleet.route(_request(session="t/s1"))
    fleet.sim.run_until(first.completion)
    holder = first.device_id
    assert fleet.router.pins["t/s1"] == holder
    second = fleet.route(_request(session="t/s1", context=200))
    assert second.device_id == holder
    # The KV discount shrank the effective prompt the gateway saw.
    assert second.prompt_tokens < 200 + 32


def test_cache_aware_prefers_prefix_holder():
    fleet = _fleet(3, policy="cache-aware")
    seed = _request(session="t/s1", prefix="t/p0", prefix_tokens=400, new=8)
    first = fleet.route(seed)
    fleet.sim.run_until(first.completion)
    holder = first.device_id
    # A *different* session sharing the prefix follows it.
    other = _request(session="t/s2", prefix="t/p0", prefix_tokens=400, new=8)
    second = fleet.route(other)
    assert second.device_id == holder
    assert second.prompt_tokens == 8  # 400 prefix tokens discounted


def test_spillover_falls_through_to_next_ranked_device():
    fleet = _fleet(2, policy="least-outstanding")
    # Fill device queues: interactive capacity is 8 per lane, one runs.
    served = [fleet.route(_request(session="t/s%d" % i)) for i in range(9)]
    first_device = served[0].device_id
    others = {r.device_id for r in served[1:]}
    assert len(others.union({first_device})) == 2  # both devices used
    spillover = fleet.registry.counter("fleet_spillover_total")
    total_spill = sum(v for _k, v in spillover.samples())
    # least-outstanding balances instead of spilling; force saturation:
    with pytest.raises(FleetSaturated):
        for i in range(30):
            fleet.route(_request(session="t/x%d" % i))
    assert fleet.router.shed_reasons.get("fleet-saturated", 0) >= 1
    assert fleet.registry.counter("fleet_shed_total").value() >= 1
    assert (
        sum(v for _k, v in spillover.samples()) > total_spill
    )  # saturation implies earlier choices rejected


def test_no_eligible_device_sheds():
    fleet = _fleet(2)
    bad = replace_model(_request(), "missing-model")
    with pytest.raises(FleetSaturated):
        fleet.route(bad)
    assert fleet.router.shed_reasons == {"no-eligible-device": 1}


def test_breaker_open_rebalances_pinned_sessions():
    fleet = _fleet(2, policy="session-affinity")
    first = fleet.route(_request(session="t/s1"))
    fleet.sim.run_until(first.completion)
    holder = fleet.router.pins["t/s1"]
    sick = fleet.device(holder)
    # Open the holder's breaker with consecutive injected faults.
    for _ in range(sick.gateway.config.breaker_threshold):
        sick.system.inject_fault(TINYLLAMA.model_id, RuntimeError("flaky npu"))
        req = sick.gateway.submit(8, 0, model_id=TINYLLAMA.model_id, priority="background")
        fleet.sim.run_until(req.completion)
    assert sick.breaker_open(TINYLLAMA.model_id)
    # The session's next turn re-routes to the healthy device.
    second = fleet.route(_request(session="t/s1", context=100))
    assert second.device_id != holder
    assert fleet.router.rebalanced_sessions == 1
    assert (
        fleet.registry.counter("fleet_sessions_rebalanced").value(reason="breaker-open")
        == 1
    )
    assert fleet.router.pins["t/s1"] == second.device_id
    assert not fleet.health()["healthy"]


def test_rebalance_sweep_cuts_pins_of_sick_devices():
    fleet = _fleet(2, policy="session-affinity")
    first = fleet.route(_request(session="t/s1"))
    fleet.sim.run_until(first.completion)
    holder = fleet.device(fleet.router.pins["t/s1"])
    for _ in range(holder.gateway.config.breaker_threshold):
        holder.system.inject_fault(TINYLLAMA.model_id, RuntimeError("boom"))
        req = holder.gateway.submit(8, 0, model_id=TINYLLAMA.model_id, priority="background")
        fleet.sim.run_until(req.completion)
    assert fleet.router.rebalance() == 1
    assert fleet.router.pins == {}


def test_health_rolls_up_devices_and_metrics_are_device_labeled():
    fleet = _fleet(2)
    done = fleet.route(_request())
    fleet.sim.run_until(done.completion)
    health = fleet.health()
    assert set(health["devices"]) == {"dev0", "dev1"}
    assert health["completed"] == 1
    assert health["devices"][done.device_id]["gateway_id"] == done.device_id
    assert health["healthy"]
    # Per-device serving series carry the device label on the shared registry.
    served = fleet.registry.counter("serve_admitted_total")
    assert served.value(**{"class": "interactive", "device": done.device_id}) == 1


def test_policy_validation_and_registry():
    with pytest.raises(ConfigurationError):
        make_policy("nope")
    sim = Simulator()
    devices = [
        DeviceNode("a", [TINYLLAMA], sim=sim),
        DeviceNode("a", [TINYLLAMA], sim=sim),
    ]
    with pytest.raises(ConfigurationError):
        FleetRouter(devices)
    with pytest.raises(ConfigurationError):
        FleetRouter([])
    with pytest.raises(ConfigurationError):
        FleetRouter(
            [DeviceNode("a", [TINYLLAMA]), DeviceNode("b", [TINYLLAMA])]
        )  # different simulators


def _replay(policy, seed=13):
    platforms = [
        ("dev%d" % i, scale_platform(RK3588, "v%d" % i, cpu=1.0 + 0.15 * i))
        for i in range(4)
    ]
    fleet = Fleet(platforms, [TINYLLAMA], policy=policy, warm=True)
    trace = generate_fleet_trace(
        300.0,
        [
            FleetTenantSpec(
                "chat",
                TINYLLAMA.model_id,
                "interactive",
                sessions_per_hour=600.0,
                prefix_tokens=64,
                prefix_pool=2,
            )
        ],
        seed=seed,
    )
    gen = FleetLoadGenerator(fleet.router, trace).run_blocking()
    return gen.summary()


def test_fleet_replay_is_seed_deterministic():
    assert _replay("cache-aware") == _replay("cache-aware")
    assert _replay("random") == _replay("random")
    assert _replay("cache-aware", seed=13) != _replay("cache-aware", seed=14)


def test_slo_counters_feed_burn_rate_rules():
    fleet = _fleet(2)
    fleet.start_alerts(until=60.0)
    done = fleet.route(_request())
    fleet.sim.run_until(done.completion)
    fleet.sim.run(until=60.0)
    assert fleet.registry.counter("fleet_slo_requests_total").value() == 1
    assert fleet.registry.counter("fleet_slo_total").value(outcome="attained") == 1
    assert fleet.alert_engine.ticks > 0
    assert fleet.health()["alerts_firing"] == []
