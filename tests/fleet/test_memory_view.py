"""The fleet memory rollup (repro.obs.memory.FleetMemoryView)."""

import pytest

from repro.config import RK3588
from repro.errors import ConfigurationError
from repro.fleet import Fleet
from repro.llm import TINYLLAMA
from repro.obs import TelemetryConfig
from repro.workloads.fleet import FleetRequest, FleetTenantSpec, generate_fleet_trace


def _fleet(n=2, **kwargs):
    platforms = [("dev%d" % i, RK3588) for i in range(n)]
    return Fleet(platforms, [TINYLLAMA], policy="cache-aware", warm=True, **kwargs)


def _request(at=0.0, tenant="t", session="t/s1", new=32, out=8):
    return FleetRequest(
        at=at, tenant=tenant, session_id=session, turn=1,
        model_id=TINYLLAMA.model_id, priority="interactive", prefix_id="",
        prefix_tokens=0, context_tokens=0, new_tokens=new, output_tokens=out,
    )


def _drive(fleet, horizon=120.0):
    tenants = [
        FleetTenantSpec("alpha", TINYLLAMA.model_id, "interactive",
                        sessions_per_hour=240, output_tokens=(4, 12)),
        FleetTenantSpec("beta", TINYLLAMA.model_id, "batch",
                        sessions_per_hour=120, output_tokens=(8, 24)),
    ]
    trace = generate_fleet_trace(horizon, tenants, seed=9)

    def feeder():
        for request in trace:
            yield fleet.sim.timeout(max(0.0, request.at - fleet.sim.now))
            fleet.route(request)

    fleet.sim.process(feeder())
    fleet.sim.run(until=horizon)
    return trace


def test_memory_view_requires_telemetry_and_starts_once():
    fleet = _fleet(1)
    with pytest.raises(ConfigurationError):
        fleet.start_memory_view()
    fleet.start_telemetry(until=10.0)
    fleet.start_memory_view()
    with pytest.raises(ConfigurationError):
        fleet.start_memory_view()


def test_memory_view_series_and_stranded_integral():
    # A small session LRU forces evictions: the backing high-water stays
    # where the peak put it while the parked content drops — which is
    # exactly the end-only-growth stranding the observatory measures.
    fleet = _fleet(2, session_capacity=3)
    fleet.start_telemetry(
        until=120.0, config=TelemetryConfig(scrape_interval=1.0, ring_capacity=256)
    )
    view = fleet.start_memory_view()
    _drive(fleet)
    store = fleet.telemetry.store
    assert view.refreshes > 0
    for device_id in fleet.devices:
        configured = store.latest("fleet_mem_configured_bytes", device=device_id)
        # Warm devices always hold resident params: configured > 0.
        assert configured and configured >= TINYLLAMA.param_bytes
    # The acceptance series: a nonzero stranded byte-second integral
    # (params sit configured while KV churns below the high-water mark).
    assert store.latest("fleet_mem_stranded_byte_seconds_total") > 0
    assert view.stranded_byte_seconds > 0
    # Parked sessions priced per tenant.
    assert view.tenant_byte_seconds
    assert all(v >= 0 for v in view.tenant_byte_seconds.values())


def test_memory_view_snapshot_and_memtop_render():
    fleet = _fleet(2)
    fleet.start_telemetry(until=120.0)
    fleet.start_memory_view()
    _drive(fleet)
    snap = fleet.telemetry_snapshot()
    assert snap["memory"]["schema"] == "repro.obs.memory.fleet/1"
    assert set(snap["memory"]["devices"]) == set(fleet.devices)
    for info in snap["memory"]["devices"].values():
        assert info["configured_bytes"] >= info["kv_live_bytes"]
    top = fleet.memory.render_memtop()
    assert "mem top" in top and "dev0" in top and "fleet" in top
    assert "tenant byte-seconds" in top


def test_session_model_map_tracks_lru_and_crash():
    fleet = _fleet(1, session_capacity=2)
    device = fleet.device("dev0")
    done = []
    for i, session in enumerate(("t/s1", "t/s2", "t/s3")):
        request = _request(at=float(i), session=session, out=2)
        done.append(fleet.route(request))
    for ticket in done:
        fleet.sim.run_until(ticket.completion)
    # LRU capacity 2: s1 evicted, map stays parallel to sessions.
    assert set(device.session_model) == set(device.sessions)
    assert all(m == TINYLLAMA.model_id for m in device.session_model.values())
    device.drop_session("t/s2")
    assert "t/s2" not in device.session_model
    device.crash()
    assert not device.session_model and not device.sessions
