"""Telemetry over a live fleet: lifecycle-correct scraping, hedge
attribution, tenant accounting, operator snapshots."""

import json

import pytest

from repro.config import RK3588
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import Fleet, ResilienceConfig
from repro.fleet.resilience import UP
from repro.llm import TINYLLAMA
from repro.obs import TelemetryConfig
from repro.workloads.fleet import FleetRequest


def _request(at=0.0, session="t/s1", context=0, new=32, out=4, priority="interactive"):
    return FleetRequest(
        at=at,
        tenant="t",
        session_id=session,
        turn=1,
        model_id=TINYLLAMA.model_id,
        priority=priority,
        prefix_id="",
        prefix_tokens=0,
        context_tokens=context,
        new_tokens=new,
        output_tokens=out,
    )


def _fleet(n=2, resilience=None, **kwargs):
    platforms = [("dev%d" % i, RK3588) for i in range(n)]
    return Fleet(
        platforms, [TINYLLAMA], policy="cache-aware", warm=True,
        resilience=resilience, **kwargs,
    )


# ---------------------------------------------------------------------------
# collector x device lifecycle
# ---------------------------------------------------------------------------
def test_up_gauge_tracks_crash_reboot_attest_with_no_stale_samples():
    fleet = _fleet(2, resilience=ResilienceConfig(hedging=False))
    fleet.start_telemetry(
        until=60.0, config=TelemetryConfig(scrape_interval=1.0, ring_capacity=120)
    )
    warmup = fleet.route(_request(out=2))
    fleet.sim.run_until(warmup.completion)
    victim_id = warmup.device_id
    plan = FaultPlan(
        11,
        [
            FaultSpec(
                "fleet.device_crash",
                probability=1.0,
                window=(5.0, 6.5),
                max_fires=1,
                target=victim_id,
            )
        ],
    )
    fleet.start_resilience(until=60.0, plan=plan)
    fleet.sim.run(until=60.0)
    victim = fleet.device(victim_id)
    assert victim.lifecycle.state == UP  # recovered by the horizon
    assert victim.lifecycle.crashes == 1
    samples = fleet.telemetry.store.samples("fleet_device_up", device=victim_id)
    # Continuity: the series never skips a scrape, crash or not.
    assert [t for t, _v in samples] == [float(t) for t in range(1, 61)]
    # Every sample must agree with the lifecycle state *at scrape time* —
    # a stale 1 while the device sat in down/reboot/attest is the bug
    # this guards against.  (A transition landing exactly on a scrape
    # instant may legitimately sample either side.)
    transitions = victim.lifecycle.transitions
    for at, value in samples:
        states = {UP}
        for t_tr, state, _reason in transitions:
            if t_tr < at or (t_tr == at and value == (1.0 if state == UP else 0.0)):
                states = {state}
        assert value == (1.0 if states == {UP} else 0.0), (at, value, states)
    downs = [t for t, v in samples if v == 0.0]
    assert downs, "crash window never sampled as down"
    # The outage is one contiguous scrape run (crash -> ... -> attested).
    assert downs == [downs[0] + i for i in range(len(downs))]
    # Windowed availability over the outage is visibly below 1.
    outage_frac = fleet.telemetry.store.avg(
        "fleet_device_up", 60.0, 60.0, device=victim_id
    )
    assert 0.0 < outage_frac < 1.0


def test_telemetry_double_start_and_missing_snapshot_raise():
    fleet = _fleet(1)
    with pytest.raises(ConfigurationError):
        fleet.telemetry_snapshot()
    fleet.start_telemetry(until=10.0)
    with pytest.raises(ConfigurationError):
        fleet.start_telemetry(until=10.0)


# ---------------------------------------------------------------------------
# hedged-attempt attribution (per-attempt trace identity)
# ---------------------------------------------------------------------------
def test_hedged_ticket_attempts_carry_distinct_device_contexts():
    fleet = _fleet(2, resilience=ResilienceConfig(hedge_delay=0.2))
    fleet.start_telemetry(until=600.0)
    fleet.device("dev0").set_slowdown(50.0)
    ticket = fleet.route(_request(out=8))
    fleet.sim.run_until(ticket.completion)
    assert ticket.done and ticket.hedges == 1
    # The router stamps every attempt's gateway request with its own
    # trace identity: same ticket id, per-attempt span, actual device.
    for i, attempt in enumerate(ticket.attempts):
        ctx = attempt.trace
        assert ctx.request_id == ticket.ticket_id
        assert ctx.span_id == i
        assert ctx.device == attempt.device_id
        assert ctx.flow_id == ticket.ticket_id * 1000 + i
        assert "@%s" % attempt.device_id in ctx.flow_name
    assert ticket.attempts[0].trace.device != ticket.attempts[1].trace.device
    # The tail sampler kept the hedged ticket (anomaly => 100% retention)
    # and its trace separates the attempts by device lane.
    sampler = fleet.telemetry.sampler
    assert sampler.kept["hedged"] == 1
    trace = sampler.traces[-1]
    serve_args = [
        e["args"] for e in trace["events"] if e.get("cat") == "serve"
    ]
    assert {(a["attempt"], a["device"]) for a in serve_args} == {
        (0, "dev0"), (1, "dev1"),
    }
    winners = [a for a in serve_args if a["winner"]]
    assert len(winners) == 1 and winners[0]["device"] == "dev1"


# ---------------------------------------------------------------------------
# accounting + snapshot end-to-end
# ---------------------------------------------------------------------------
def test_accountant_meters_served_tokens_and_snapshot_renders():
    fleet = _fleet(2)
    fleet.start_telemetry(
        until=120.0, config=TelemetryConfig(scrape_interval=2.0)
    )
    tickets = [
        fleet.route(_request(session="t/s%d" % i, out=4)) for i in range(6)
    ]
    for ticket in tickets:
        fleet.sim.run_until(ticket.completion)
    fleet.sim.run(until=120.0)
    acct = fleet.telemetry.accountant
    totals = acct.to_dict()["totals"]["t"]
    assert totals["requests"] == 6
    assert totals["tokens_out"] == sum(t.winner.tokens_generated for t in tickets)
    assert totals["tokens_in"] == sum(t.winner.prompt_tokens for t in tickets)
    assert totals["kv_byte_seconds"] > 0 and totals["residency_seconds"] > 0
    assert acct.top_k("requests") == [("t", 6)]
    # The operator snapshot assembles store + accountant + sampler.
    snap = fleet.telemetry_snapshot()
    assert snap["at"] == 120.0
    assert set(snap["devices"]) == {"dev0", "dev1"}
    for info in snap["devices"].values():
        assert info["state"] == "up" and info["up"] == 1.0
    assert snap["fleet"]["request_rate"] >= 0.0
    assert snap["tenants"]["top_k"]["requests"] == [["t", 6]]
    json.dumps(snap, sort_keys=True)  # JSON-clean
    top = fleet.telemetry.render_top()
    assert "dev0" in top and "tenant" in top and "traces: kept" in top
    # health() folds the windowed rates in.
    rates = fleet.health()["rates"]
    assert rates["request_rate"] >= 0.0 and "shed_rate" in rates
