"""The analytical device model must move the way the platform spec says."""

import pytest

from repro.config import RK3588
from repro.core.llm_ta import PreemptionGate
from repro.errors import ConfigurationError
from repro.fleet import SurrogateConfig, SurrogateLLM, scale_platform
from repro.llm import QWEN25_3B, TINYLLAMA
from repro.sim import Simulator


def _run(system, model_id, prompt, out=0, preempt=None):
    proc = system.sim.process(system.infer(model_id, prompt, out, preempt=preempt))
    return system.sim.run_until(proc)


def test_cold_then_warm_ttft():
    system = SurrogateLLM([TINYLLAMA])
    cold = _run(system, TINYLLAMA.model_id, 64)
    warm = _run(system, TINYLLAMA.model_id, 64)
    assert cold.init_time > 0 and warm.init_time == 0
    assert cold.ttft == pytest.approx(
        warm.ttft + system.restore_time(TINYLLAMA), rel=1e-9
    )
    assert warm.cached_bytes == TINYLLAMA.param_bytes


def test_prefill_scales_with_prompt_and_platform():
    slow = SurrogateLLM([TINYLLAMA], platform=RK3588)
    fast = SurrogateLLM(
        [TINYLLAMA], platform=scale_platform(RK3588, "fast", cpu=2.0, npu=2.0)
    )
    assert slow.prefill_time(TINYLLAMA, 512) > slow.prefill_time(TINYLLAMA, 64)
    assert fast.prefill_time(TINYLLAMA, 512) < slow.prefill_time(TINYLLAMA, 512)
    # Decode is bandwidth-bound: scaling mem bandwidth scales it.
    wide = SurrogateLLM([TINYLLAMA], platform=scale_platform(RK3588, "wide", mem=2.0))
    assert wide.decode_time_per_token(TINYLLAMA) == pytest.approx(
        slow.decode_time_per_token(TINYLLAMA) / 2.0
    )


def test_decode_emits_tokens_on_the_clock():
    system = SurrogateLLM([TINYLLAMA])
    record = _run(system, TINYLLAMA.model_id, 32, out=16)
    assert len(record.decode.token_ids) == 16
    assert not record.preempted
    expected = 16 * system.decode_time_per_token(TINYLLAMA)
    assert sum(record.decode.step_times) == pytest.approx(expected)


def test_residency_budget_evicts_lru():
    config = SurrogateConfig(model_budget_bytes=QWEN25_3B.param_bytes + 1)
    system = SurrogateLLM([TINYLLAMA, QWEN25_3B], config=config)
    _run(system, TINYLLAMA.model_id, 8)
    assert system.resident_models() == [TINYLLAMA.model_id]
    # The larger model displaces the smaller one (budget fits only it).
    _run(system, QWEN25_3B.model_id, 8)
    assert system.resident_models() == [QWEN25_3B.model_id]
    record = _run(system, TINYLLAMA.model_id, 8)
    assert record.init_time > 0  # had to cold-restore again


def test_preemption_gate_stops_decode_at_chunk_boundary():
    sim = Simulator()
    config = SurrogateConfig(preempt_check_tokens=4)
    system = SurrogateLLM([TINYLLAMA], config=config, sim=sim)
    gate = PreemptionGate()
    proc = sim.process(system.infer(TINYLLAMA.model_id, 16, 64, preempt=gate))

    def preemptor():
        yield sim.timeout(system.restore_time(TINYLLAMA) + 1.0)
        gate.request(cause="test", at=sim.now)

    sim.process(preemptor())
    record = sim.run_until(proc)
    assert record.preempted
    assert 0 < len(record.decode.token_ids) < 64
    assert len(record.decode.token_ids) % 4 == 0


def test_fault_injection_consumed_in_order():
    system = SurrogateLLM([TINYLLAMA])
    system.inject_fault(TINYLLAMA.model_id, RuntimeError("boom"))
    with pytest.raises(RuntimeError):
        _run(system, TINYLLAMA.model_id, 8)
    _run(system, TINYLLAMA.model_id, 8)  # next request is clean


def test_validation():
    with pytest.raises(ConfigurationError):
        SurrogateLLM([])
    with pytest.raises(ConfigurationError):
        SurrogateLLM([TINYLLAMA, TINYLLAMA])
    system = SurrogateLLM([TINYLLAMA])
    with pytest.raises(ConfigurationError):
        system.warm("nope")
