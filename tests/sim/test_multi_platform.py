"""N independent platforms on one simulator must not perturb each other.

The fleet tier builds one ``build_stack``/``TZLLM`` per device on a
shared :class:`~repro.sim.Simulator`.  These tests pin down the isolation
contract: a device's timing in a shared simulator is bit-identical to the
same device running alone, resource names are namespaced per board, and
per-device key material never collides.
"""

from repro.core.system import TZLLM
from repro.hw.common import World
from repro.llm import TINYLLAMA
from repro.sim import Simulator
from repro.stack import build_stack


def _fingerprint(record):
    """The timing- and content-bearing fields of an InferenceRecord.

    Durations are rounded to a nanosecond: in a shared simulator a
    device's requests run at different *absolute* clock values, so
    ``now - start`` subtraction can wobble in the last ulp (~1e-15 s)
    without any cross-device state leak.
    """
    return (
        record.prompt_tokens,
        record.output_tokens,
        round(record.ttft, 9),
        round(record.init_time, 9),
        record.cached_groups,
        record.cached_bytes,
        tuple(record.decode.token_ids) if record.decode else None,
        tuple(round(t, 9) for t in record.decode.step_times) if record.decode else None,
    )


def _run_requests(system, model_id=None):
    out = []
    for prompt, decode in ((16, 2), (32, 1)):
        record = system.run_infer(prompt, decode)
        out.append(_fingerprint(record))
    return out


def test_two_device_sim_matches_two_single_device_sims():
    # Reference: each device alone in its own simulator.
    solo_a = _run_requests(TZLLM(TINYLLAMA, device_name="dev-a"))
    solo_b = _run_requests(TZLLM(TINYLLAMA, device_name="dev-b", cache_fraction=1.0))

    # Shared: both devices on one clock.  Interleave the request streams
    # so the event queues genuinely mix.
    sim = Simulator()
    dev_a = TZLLM(TINYLLAMA, sim=sim, device_name="dev-a")
    dev_b = TZLLM(TINYLLAMA, sim=sim, device_name="dev-b", cache_fraction=1.0)
    assert dev_a.sim is dev_b.sim

    shared_a, shared_b = [], []
    for prompt, decode in ((16, 2), (32, 1)):
        proc_a = sim.process(dev_a.infer(prompt, decode))
        proc_b = sim.process(dev_b.infer(prompt, decode))
        shared_a.append(_fingerprint(sim.run_until(proc_a)))
        shared_b.append(_fingerprint(sim.run_until(proc_b)))

    assert shared_a == solo_a
    assert shared_b == solo_b


def test_board_resources_are_namespaced():
    sim = Simulator()
    a = build_stack(sim=sim, name="dev-a")
    b = build_stack(sim=sim, name="dev-b")
    assert a.board.big_cpus.name == "dev-a:big-cpus"
    assert b.board.big_cpus.name == "dev-b:big-cpus"
    assert a.board.flash.pipe.name != b.board.flash.pipe.name
    # The unnamed default keeps its historical resource names.
    solo = build_stack()
    assert solo.board.big_cpus.name == "big-cpus"


def test_per_device_hardware_keys_differ():
    sim = Simulator()
    a = build_stack(sim=sim, name="dev-a")
    b = build_stack(sim=sim, name="dev-b")
    assert a.keystore.hardware_key(World.SECURE) != b.keystore.hardware_key(
        World.SECURE
    )
    # An explicit seed still wins over the derived one.
    c = build_stack(sim=Simulator(), name="dev-c", device_seed=b"fixed")
    d = build_stack(sim=Simulator(), name="dev-d", device_seed=b"fixed")
    assert c.keystore.hardware_key(World.SECURE) == d.keystore.hardware_key(
        World.SECURE
    )
