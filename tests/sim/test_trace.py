"""Tests for span tracing and Chrome-trace export."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.sim.trace import NULL_TRACER, Span, Tracer


def test_record_and_totals():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        t0 = sim.now
        yield sim.timeout(1.0)
        tracer.record("alloc", "alloc g0", t0, lane="CPU")
        t1 = sim.now
        yield sim.timeout(0.5)
        tracer.record("load", "load g0", t1, lane="I/O")

    done = sim.process(proc())
    sim.run_until(done)
    assert tracer.total_time("alloc") == pytest.approx(1.0)
    assert tracer.total_time("load") == pytest.approx(0.5)
    assert tracer.lanes() == ["CPU", "I/O"]


def test_span_handle():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        handle = tracer.span("compute", "matmul", lane="NPU")
        yield sim.timeout(2.0)
        handle.close()
        handle.close()  # idempotent

    sim.run_until(sim.process(proc()))
    assert len(tracer.spans) == 1
    assert tracer.spans[0].duration == pytest.approx(2.0)


def test_backwards_span_rejected():
    sim = Simulator()
    tracer = Tracer(sim)
    with pytest.raises(ConfigurationError):
        tracer.record("x", "y", start=5.0)


def test_chrome_trace_json_structure():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.spans.append(Span("alloc", "alloc g0", 0.0, 0.5, "CPU"))
    tracer.spans.append(Span("load", "load g0", 0.1, 0.7, "I/O"))
    doc = json.loads(tracer.to_chrome_trace())
    events = doc["traceEvents"]
    names = {e["name"] for e in events if e["ph"] == "X"}
    assert names == {"alloc g0", "load g0"}
    lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert lanes == {"CPU", "I/O"}
    x = next(e for e in events if e["ph"] == "X" and e["name"] == "alloc g0")
    assert x["ts"] == 0.0 and x["dur"] == pytest.approx(0.5e6)


def test_null_tracer_is_free():
    NULL_TRACER.record("a", "b", 0.0)
    NULL_TRACER.span("a", "b").close()
    assert not NULL_TRACER.enabled


def test_end_to_end_pipeline_trace(tmp_path):
    from repro.core import TZLLM
    from repro.llm import TINYLLAMA

    system = TZLLM(TINYLLAMA, trace=True)
    system.run_infer(8, 0)
    system.run_infer(64, 0)
    tracer = system.tracer
    lanes = tracer.lanes()
    assert "CPU" in lanes and "I/O engine" in lanes and "NPU" in lanes
    # The Fig. 5 rows are all populated.
    for category in ("alloc", "load", "decrypt", "compute"):
        assert tracer.total_time(category) > 0
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) > 50
