"""Tests for span tracing and Chrome-trace export."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.sim.trace import NULL_TRACER, Span, Tracer


def test_record_and_totals():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        t0 = sim.now
        yield sim.timeout(1.0)
        tracer.record("alloc", "alloc g0", t0, lane="CPU")
        t1 = sim.now
        yield sim.timeout(0.5)
        tracer.record("load", "load g0", t1, lane="I/O")

    done = sim.process(proc())
    sim.run_until(done)
    assert tracer.total_time("alloc") == pytest.approx(1.0)
    assert tracer.total_time("load") == pytest.approx(0.5)
    assert tracer.lanes() == ["CPU", "I/O"]


def test_span_handle():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        handle = tracer.span("compute", "matmul", lane="NPU")
        yield sim.timeout(2.0)
        handle.close()
        handle.close()  # idempotent

    sim.run_until(sim.process(proc()))
    assert len(tracer.spans) == 1
    assert tracer.spans[0].duration == pytest.approx(2.0)


def test_backwards_span_rejected():
    sim = Simulator()
    tracer = Tracer(sim)
    with pytest.raises(ConfigurationError):
        tracer.record("x", "y", start=5.0)


def test_chrome_trace_json_structure():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.spans.append(Span("alloc", "alloc g0", 0.0, 0.5, "CPU"))
    tracer.spans.append(Span("load", "load g0", 0.1, 0.7, "I/O"))
    doc = json.loads(tracer.to_chrome_trace())
    events = doc["traceEvents"]
    names = {e["name"] for e in events if e["ph"] == "X"}
    assert names == {"alloc g0", "load g0"}
    lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert lanes == {"CPU", "I/O"}
    x = next(e for e in events if e["ph"] == "X" and e["name"] == "alloc g0")
    assert x["ts"] == 0.0 and x["dur"] == pytest.approx(0.5e6)


def test_null_tracer_is_free():
    NULL_TRACER.record("a", "b", 0.0)
    NULL_TRACER.span("a", "b").close()
    assert not NULL_TRACER.enabled


def test_end_to_end_pipeline_trace(tmp_path):
    from repro.core import TZLLM
    from repro.llm import TINYLLAMA

    system = TZLLM(TINYLLAMA, trace=True)
    system.run_infer(8, 0)
    system.run_infer(64, 0)
    tracer = system.tracer
    lanes = tracer.lanes()
    assert "CPU" in lanes and "I/O engine" in lanes and "NPU" in lanes
    # The Fig. 5 rows are all populated.
    for category in ("alloc", "load", "decrypt", "compute"):
        assert tracer.total_time(category) > 0
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) > 50


def test_span_handle_is_a_context_manager():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        with tracer.span("compute", "matmul", lane="NPU"):
            yield sim.timeout(1.0)

    sim.run_until(sim.process(proc()))
    assert len(tracer.spans) == 1
    assert tracer.spans[0].duration == pytest.approx(1.0)


def test_span_handle_closes_on_exception():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        try:
            with tracer.span("load", "g0", lane="I/O"):
                yield sim.timeout(0.5)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        yield sim.timeout(0.0)

    sim.run_until(sim.process(proc()))
    # The failed span is still recorded, with the time it consumed.
    assert len(tracer.spans) == 1
    assert tracer.spans[0].duration == pytest.approx(0.5)


def test_flow_events_require_valid_phase():
    tracer = Tracer(Simulator())
    with pytest.raises(ConfigurationError):
        tracer.flow("x", 1, "request r1")


def test_chrome_export_event_keys_per_phase():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.spans.append(Span("gateway", "serve r1", 0.0, 1.0, "gateway"))
    tracer.instant("preempt", "r2 preempts r1", lane="gateway")
    tracer.counter("queue_depth", 3)
    tracer.flow("s", 1001, "request r1", lane="gateway")
    tracer.flow("t", 1001, "request r1", lane="CPU")
    tracer.flow("f", 1001, "request r1", lane="gateway")

    doc = json.loads(tracer.to_chrome_trace())
    events = doc["traceEvents"]
    required = {
        "X": {"pid", "tid", "cat", "name", "ts", "dur"},
        "i": {"pid", "tid", "cat", "name", "ts", "s"},
        "C": {"pid", "tid", "name", "ts", "args"},
        "M": {"pid", "tid", "name", "args"},
        "s": {"pid", "tid", "cat", "name", "id", "ts"},
        "t": {"pid", "tid", "cat", "name", "id", "ts"},
        "f": {"pid", "tid", "cat", "name", "id", "ts", "bp"},
    }
    seen = set()
    for event in events:
        ph = event["ph"]
        seen.add(ph)
        assert required[ph] <= set(event), (ph, event)
        if "dur" in event:
            assert event["dur"] >= 0
        if "ts" in event:
            assert event["ts"] >= 0
    assert seen == set(required)
    # Counters ride on tid 0, lanes on tids 1..n.
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["tid"] == 0
    lane_tids = {e["tid"] for e in events if e["ph"] == "M"}
    assert lane_tids == {1, 2}
    # The finish leg binds to the enclosing slice's end.
    finish = next(e for e in events if e["ph"] == "f")
    assert finish["bp"] == "e"
    # Round trip: serializing the parsed doc loses nothing.
    assert json.loads(json.dumps(doc)) == doc


def test_null_tracer_has_full_api_parity():
    from repro.sim.trace import NullTracer

    real = {
        name
        for name in dir(Tracer)
        if not name.startswith("_") and callable(getattr(Tracer, name))
    }
    null = {
        name
        for name in dir(NullTracer)
        if not name.startswith("_") and callable(getattr(NullTracer, name))
    }
    assert real <= null, "NullTracer missing: %s" % (real - null)
    # The read-side attributes exist and are empty.
    assert NULL_TRACER.lanes() == []
    assert NULL_TRACER.total_time("anything") == 0.0
    doc = json.loads(NULL_TRACER.to_chrome_trace())
    assert doc["traceEvents"] == []


def test_null_tracer_never_allocates():
    from repro.sim.trace import NullTracer

    # The collections are shared class-level empty tuples: recording
    # through the null tracer can never grow per-instance state.
    assert NULL_TRACER.spans is NullTracer.spans is ()
    assert NULL_TRACER.counters is NullTracer.counters is ()
    assert NULL_TRACER.instants is NullTracer.instants is ()
    assert NULL_TRACER.flows is NullTracer.flows is ()
    NULL_TRACER.record("a", "b", 0.0)
    NULL_TRACER.counter("q", 1)
    NULL_TRACER.instant("a", "b")
    NULL_TRACER.flow("s", 1, "r1")
    with NULL_TRACER.span("a", "b"):
        pass
    assert NULL_TRACER.spans == () and NULL_TRACER.flows == ()
    assert not hasattr(NULL_TRACER, "__dict__") or not NULL_TRACER.__dict__


def test_flow_lanes_participate_in_lane_list():
    tracer = Tracer(Simulator())
    tracer.flow("s", 1, "request r1", lane="gateway")
    assert tracer.lanes() == ["gateway"]
