"""Failure propagation through the sim core's composition primitives.

The recovery machinery (repro.faults) leans on exactly these semantics:
the TEE watchdog races a completion against a timer with AnyOf, load
generators gather request completions with a fail-fast AllOf, and the
prefill pipeline interrupts workers waiting on shared resources.  These
tests pin the contracts down at the sim layer so a regression shows up
here first, not as a hung chaos run.
"""

import pytest

from repro.errors import StorageError
from repro.sim import BandwidthResource, Interrupt, Simulator


def _boom(sim, delay, exc):
    yield sim.timeout(delay)
    raise exc


# ---------------------------------------------------------------------------
# AllOf
# ---------------------------------------------------------------------------
def test_allof_fails_fast_on_child_exception():
    sim = Simulator()
    failing = sim.process(_boom(sim, 0.5, StorageError("injected")))
    slow = sim.timeout(10.0)

    def waiter():
        yield sim.all_of([failing, slow])

    proc = sim.process(waiter())
    with pytest.raises(StorageError):
        sim.run_until(proc)
    # Fail-fast: the waiter saw the error at the failing child's time,
    # not after the slow sibling.
    assert sim.now == pytest.approx(0.5)


def test_allof_succeeds_with_all_values():
    sim = Simulator()

    def work(delay, value):
        yield sim.timeout(delay)
        return value

    a = sim.process(work(0.1, "a"))
    b = sim.process(work(0.2, "b"))

    def waiter():
        result = yield sim.all_of([a, b])
        return result

    values = sim.run_until(sim.process(waiter()))
    assert list(values.values()) == ["a", "b"]


# ---------------------------------------------------------------------------
# AnyOf
# ---------------------------------------------------------------------------
def test_anyof_propagates_child_exception_before_any_success():
    sim = Simulator()
    failing = sim.process(_boom(sim, 0.5, StorageError("injected")))
    slow = sim.timeout(10.0)

    def waiter():
        yield sim.any_of([failing, slow])

    with pytest.raises(StorageError):
        sim.run_until(sim.process(waiter()))


def test_anyof_swallows_late_child_failure():
    """A child failing *after* the AnyOf triggered must not crash the sim.

    This is the watchdog's safety property: guard(event, timeout) races
    the completion against a timer; if the timer wins and the guarded
    event later fails, the AnyOf's registered callback absorbs the
    exception instead of re-raising it into the event loop.
    """
    sim = Simulator()
    late_failure = sim.process(_boom(sim, 5.0, StorageError("too late")))
    timer = sim.timeout(1.0)

    def waiter():
        yield sim.any_of([late_failure, timer])
        assert sim.now == pytest.approx(1.0)
        # Keep living past the late failure; nothing may blow up.
        yield sim.timeout(10.0)
        return "survived"

    assert sim.run_until(sim.process(waiter())) == "survived"
    assert sim.now == pytest.approx(11.0)


def test_anyof_winner_value_is_readable():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)
        return 42

    q = sim.process(quick())
    timer = sim.timeout(9.0)

    def waiter():
        result = yield sim.any_of([q, timer])
        return result

    values = sim.run_until(sim.process(waiter()))
    assert values == {0: 42}


# ---------------------------------------------------------------------------
# Interrupt while waiting on a BandwidthResource grant
# ---------------------------------------------------------------------------
def test_interrupt_during_bandwidth_transfer_wait():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0, name="pipe")
    observed = {}

    def mover():
        try:
            yield pipe.transfer(1000.0)  # nominally 10 s
        except Interrupt as exc:
            observed["cause"] = exc.cause
            observed["at"] = sim.now
            return "interrupted"
        return "finished"

    proc = sim.process(mover())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt(cause="fault-injected")

    sim.process(interrupter())
    assert sim.run_until(proc) == "interrupted"
    assert observed == {"cause": "fault-injected", "at": pytest.approx(2.0)}


def test_pipe_still_serves_after_interrupted_waiter():
    """The shared pipe keeps functioning for other transfers after one
    waiter was interrupted away mid-grant."""
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0, name="pipe")

    def victim():
        try:
            yield pipe.transfer(1000.0)
        except Interrupt:
            return "interrupted"
        return "finished"

    proc = sim.process(victim())

    def interrupter():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(interrupter())
    sim.run_until(proc)

    def second():
        yield pipe.transfer(100.0)
        return sim.now

    done_at = sim.run_until(sim.process(second()))
    # The victim's transfer is still on the pipe (nobody cancelled it),
    # so the second transfer shares bandwidth — it must still complete.
    assert done_at > 1.0
