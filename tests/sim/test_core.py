"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(1.5)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    order = []

    def first():
        yield sim.timeout(0)
        order.append("first")

    def second():
        yield sim.timeout(0)
        order.append("second")

    sim.process(first())
    sim.process(second())
    sim.run()
    assert order == ["first", "second"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(2)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    proc = sim.process(parent())
    assert sim.run_until(proc) == 43
    assert sim.now == 2


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    def opener():
        yield sim.timeout(3)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == [(3.0, "open")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def broken():
        yield sim.timeout(1)
        raise RuntimeError("model bug")

    sim.process(broken())
    with pytest.raises(RuntimeError, match="model bug"):
        sim.run()


def test_waiting_on_failed_process_reraises():
    sim = Simulator()

    def broken():
        yield sim.timeout(1)
        raise RuntimeError("inner")

    def parent():
        try:
            yield sim.process(broken())
        except RuntimeError as exc:
            return "caught:%s" % exc

    proc = sim.process(parent())
    assert sim.run_until(proc) == "caught:inner"


def test_interrupt_raises_at_yield_point():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
            log.append("finished")
        except Interrupt as exc:
            log.append(("interrupted", sim.now, exc.cause))

    def interrupter(target):
        yield sim.timeout(5)
        target.interrupt(cause="preempt")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("interrupted", 5.0, "preempt")]
    # Draining the queue still consumes the stale (detached) timeout.
    assert sim.now == pytest.approx(100.0)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_uncaught_interrupt_terminates_process_with_cause():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100)

    def interrupter(target):
        yield sim.timeout(2)
        target.interrupt(cause="killed")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert target.triggered
    assert target.value == "killed"


def test_all_of_waits_for_every_event():
    sim = Simulator()
    times = []

    def proc():
        done = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(4, "b"), sim.timeout(2, "c")])
        times.append((sim.now, sorted(done.values())))

    sim.process(proc())
    sim.run()
    assert times == [(4.0, ["a", "b", "c"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    times = []

    def proc():
        done = yield sim.any_of([sim.timeout(3, "slow"), sim.timeout(1, "fast")])
        times.append((sim.now, list(done.values())))

    sim.process(proc())
    sim.run()
    assert times == [(1.0, ["fast"])]


def test_run_until_time_stops_midway():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(10)
        log.append("late")

    sim.process(proc())
    sim.run(until=5)
    assert log == []
    assert sim.now == 5.0
    sim.run()
    assert log == ["late"]


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        yield gate

    proc = sim.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until(proc)


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def broken():
        yield 42

    sim.process(broken())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_determinism_same_schedule_twice():
    def build():
        sim = Simulator()
        log = []

        def worker(tag, delay):
            yield sim.timeout(delay)
            log.append((sim.now, tag))
            yield sim.timeout(delay)
            log.append((sim.now, tag))

        for index in range(10):
            sim.process(worker("w%d" % index, 0.5 + (index % 3)))
        sim.run()
        return log

    assert build() == build()


def test_nested_process_chain():
    sim = Simulator()

    def leaf(n):
        yield sim.timeout(n)
        return n

    def mid(n):
        value = yield sim.process(leaf(n))
        return value * 2

    def root():
        total = 0
        for n in (1, 2, 3):
            total += yield sim.process(mid(n))
        return total

    proc = sim.process(root())
    assert sim.run_until(proc) == 12
    assert sim.now == 6.0
