"""Unit tests for simulator resources (semaphores, bandwidth pipes)."""

import pytest

from repro.sim import BandwidthResource, Resource, SimulationError, Simulator


def test_resource_capacity_limits_concurrency():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    active = []
    peaks = []

    def worker(tag):
        req = res.request()
        yield req
        active.append(tag)
        peaks.append(len(active))
        yield sim.timeout(1)
        active.remove(tag)
        res.release(req)

    for i in range(5):
        sim.process(worker(i))
    sim.run()
    assert max(peaks) == 2
    assert sim.now == pytest.approx(3.0)  # 5 jobs, 2 wide, 1s each


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(1)
        res.release(req)

    for i in range(4):
        sim.process(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_priority_resource_admits_lowest_priority_value_first():
    sim = Simulator()
    res = Resource(sim, capacity=1, priority=True)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield sim.timeout(1)
        res.release(req)

    def worker(tag, prio):
        yield sim.timeout(0.1)  # queue up behind the holder
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    sim.process(worker("low-urgency", 5))
    sim.process(worker("high-urgency", 1))
    sim.process(worker("mid-urgency", 3))
    sim.run()
    assert order == ["high-urgency", "mid-urgency", "low-urgency"]


def test_cancel_queued_request_skips_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(1)
        res.release(req)

    sim.process(holder())
    sim.run(until=0.5)

    cancelled = res.request()
    survivor = res.request()
    cancelled.cancel()
    sim.run()
    assert survivor.triggered
    assert not cancelled.triggered
    assert res.queued == 0
    res.release(survivor)


def test_release_without_hold_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_bandwidth_single_transfer_takes_size_over_rate():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0)

    def proc():
        yield pipe.transfer(250.0)

    done = sim.process(proc())
    sim.run_until(done)
    assert sim.now == pytest.approx(2.5)


def test_bandwidth_shared_equally_between_two():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0)
    finish = {}

    def proc(tag, size):
        yield pipe.transfer(size)
        finish[tag] = sim.now

    sim.process(proc("a", 100.0))
    sim.process(proc("b", 100.0))
    sim.run()
    # Both share 100 B/s -> 50 each -> both done at t=2.
    assert finish["a"] == pytest.approx(2.0)
    assert finish["b"] == pytest.approx(2.0)


def test_bandwidth_late_joiner_slows_first():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0)
    finish = {}

    def first():
        yield pipe.transfer(100.0)
        finish["first"] = sim.now

    def second():
        yield sim.timeout(0.5)
        yield pipe.transfer(100.0)
        finish["second"] = sim.now

    sim.process(first())
    sim.process(second())
    sim.run()
    # first: 50 bytes alone (0.5s), then shares; remaining 50 at 50 B/s -> 1.5s
    assert finish["first"] == pytest.approx(1.5)
    # second: 50 B/s while sharing until t=1.5 (50 bytes), then full rate:
    # remaining 50 at 100 B/s -> 2.0s
    assert finish["second"] == pytest.approx(2.0)


def test_bandwidth_per_stream_cap():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0, per_stream=30.0)

    def proc():
        yield pipe.transfer(60.0)

    done = sim.process(proc())
    sim.run_until(done)
    assert sim.now == pytest.approx(2.0)  # capped at 30 B/s despite 100 free


def test_zero_byte_transfer_completes_immediately():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=10.0)
    xfer = pipe.transfer(0)
    assert xfer.triggered
    assert pipe.active_count == 0


def test_bandwidth_total_bytes_accounted():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=10.0)

    def proc():
        yield pipe.transfer(30.0)
        yield pipe.transfer(20.0)

    done = sim.process(proc())
    sim.run_until(done)
    assert pipe.total_bytes == pytest.approx(50.0)
    assert sim.now == pytest.approx(5.0)


def test_many_concurrent_transfers_conserve_work():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0)
    finish = []

    def proc(size):
        yield pipe.transfer(size)
        finish.append(sim.now)

    sizes = [10.0, 20.0, 30.0, 40.0]
    for size in sizes:
        sim.process(proc(size))
    sim.run()
    # Aggregate work = 100 bytes at 100 B/s -> the last finishes at t=1.
    assert max(finish) == pytest.approx(1.0)
    assert sorted(finish) == finish


def test_per_stream_cap_tracks_changing_concurrency():
    # The cap binds at low concurrency, fair-share at high: with
    # bandwidth 100 and per_stream 40, one or two streams run at 40 B/s
    # each, three run at 100/3.
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0, per_stream=40.0)
    finish = {}

    def xfer(name, start, size):
        yield sim.timeout(start)
        yield pipe.transfer(size, tag=name)
        finish[name] = sim.now

    sim.process(xfer("a", 0.0, 40.0))
    sim.process(xfer("b", 0.5, 40.0))
    sim.process(xfer("c", 1.0, 40.0))
    sim.run()
    # a: 40 B/s throughout (cap binds alone and when sharing with b).
    assert finish["a"] == pytest.approx(1.0)
    # b: 40 B/s from 0.5 (cap still binds at 2 streams: 100/2 > 40).
    assert finish["b"] == pytest.approx(1.5)
    # c: starts at 1.0 as a finishes, 40 B/s alongside b then alone.
    assert finish["c"] == pytest.approx(2.0)
    # Time-integral accounting survives the concurrency changes.
    assert pipe.stats.busy_time == pytest.approx(2.0)
    assert pipe.stats.active_area == pytest.approx(3.0)  # 0.5*1+1.0*2+0.5*1


def test_zero_size_transfer_does_not_disturb_stats():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=10.0)

    def proc():
        yield pipe.transfer(0.0, tag="empty")
        yield pipe.transfer(10.0, tag="real")
        yield pipe.transfer(0.0, tag="empty")

    done = sim.process(proc())
    sim.run_until(done)
    empty = pipe.stats.tags["empty"]
    assert empty.transfers == 2
    assert empty.completed == 2
    assert empty.bytes == 0.0
    assert empty.occupancy == 0.0
    assert empty.service_time == 0.0
    # The zero-size transfers never touch the pipe's busy time.
    assert pipe.stats.busy_time == pytest.approx(1.0)
    assert pipe.stats.active_area == pytest.approx(1.0)


def test_pipe_settle_times_sum_to_virtual_window():
    # busy + idle == window exactly, across idle gaps and overlap, and
    # the per-tag occupancies sum to the pipe's active area.
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0)

    def xfer(start, size, tag):
        yield sim.timeout(start)
        yield pipe.transfer(size, tag=tag)

    sim.process(xfer(0.0, 100.0, "a"))     # busy [0, 1.5] shared with b
    sim.process(xfer(0.5, 50.0, "b"))
    sim.process(xfer(3.0, 100.0, "c"))     # idle gap, then busy [3, 4]
    sim.run()
    pipe.sync()
    now = sim.now
    stats = pipe.stats
    assert stats.busy_time + stats.idle_time(now) == pytest.approx(stats.window(now))
    assert stats.busy_time == pytest.approx(2.5)  # [0, 1.5] + [3, 4]
    occupancy = sum(t.occupancy for t in stats.tags.values())
    assert occupancy == pytest.approx(stats.active_area)
    # Per-tag service time equals finish - start for each transfer.
    assert stats.tags["c"].service_time == pytest.approx(1.0)


def test_pipe_sync_midrun_is_idempotent():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=10.0)
    observed = {}

    def xfer():
        yield pipe.transfer(20.0, tag="x")

    def observer():
        yield sim.timeout(1.0)
        pipe.sync()
        pipe.sync()  # double-settle must not double-count
        observed["busy"] = pipe.stats.busy_time
        observed["occ"] = pipe.stats.tag("x").occupancy

    done = sim.process(xfer())
    sim.process(observer())
    sim.run_until(done)
    assert observed["busy"] == pytest.approx(1.0)
    assert observed["occ"] == pytest.approx(1.0)
    # ...and the completion schedule was untouched by the mid-run reads.
    assert sim.now == pytest.approx(2.0)
    assert pipe.stats.busy_time == pytest.approx(2.0)
