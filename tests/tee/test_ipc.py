"""Tests for TEE inter-TA IPC (capabilities, request/reply, isolation)."""

import pytest

from repro.errors import ConfigurationError, SecurityViolation
from repro.sim import Simulator
from repro.tee import TrustedApplication
from repro.tee.ipc import IPC_HOP_LATENCY, IPCRouter


@pytest.fixture
def world():
    sim = Simulator()
    router = IPCRouter(sim)
    server_ta = TrustedApplication("crypto-service")
    client_ta = TrustedApplication("llm-ta")
    port = router.register_port(server_ta, "crypto")
    sim.process(port.serve(lambda caller, msg: ("ok", caller.name, msg)))
    return sim, router, server_ta, client_ta, port


def test_call_roundtrip_with_capability(world):
    sim, router, _server, client, port = world
    router.grant(client, "crypto")

    def caller():
        reply = yield from router.call(client, "crypto", {"op": "sign"})
        return reply

    proc = sim.process(caller())
    assert sim.run_until(proc) == ("ok", "llm-ta", {"op": "sign"})
    assert port.served == 1
    assert sim.now == pytest.approx(2 * IPC_HOP_LATENCY)


def test_call_without_capability_denied(world):
    sim, router, _server, client, _port = world

    def caller():
        yield from router.call(client, "crypto", "steal-key")

    proc = sim.process(caller())
    with pytest.raises(SecurityViolation, match="capability"):
        sim.run_until(proc)
    assert router.denied_calls == 1


def test_revoked_capability_denied(world):
    sim, router, _server, client, _port = world
    router.grant(client, "crypto")
    router.revoke(client, "crypto")

    def caller():
        yield from router.call(client, "crypto", "x")

    proc = sim.process(caller())
    with pytest.raises(SecurityViolation):
        sim.run_until(proc)


def test_owner_can_call_its_own_port(world):
    sim, router, server, _client, _port = world

    def caller():
        reply = yield from router.call(server, "crypto", "self")
        return reply

    proc = sim.process(caller())
    assert sim.run_until(proc)[2] == "self"


def test_handler_exception_reflected_to_caller():
    sim = Simulator()
    router = IPCRouter(sim)
    server = TrustedApplication("svc")
    client = TrustedApplication("cli")
    port = router.register_port(server, "svc")

    def handler(caller, msg):
        raise ValueError("bad request: %r" % msg)

    sim.process(port.serve(handler))
    router.grant(client, "svc")

    def caller():
        yield from router.call(client, "svc", 42)

    proc = sim.process(caller())
    with pytest.raises(ValueError, match="bad request"):
        sim.run_until(proc)
    # The server survives the fault and serves the next request.
    fine = TrustedApplication("other")
    router.grant(fine, "svc")
    # (handler always raises; just confirm the port is still serving)
    proc2 = sim.process(caller())
    with pytest.raises(ValueError):
        sim.run_until(proc2)
    assert port.served == 2


def test_concurrent_callers_serialize_fifo():
    sim = Simulator()
    router = IPCRouter(sim)
    server = TrustedApplication("svc")
    port = router.register_port(server, "svc")
    order = []

    def handler(caller, msg):
        order.append(msg)
        return msg

    sim.process(port.serve(handler))

    def caller(ta, tag, delay):
        yield sim.timeout(delay)
        yield from router.call(ta, "svc", tag)

    for index in range(3):
        ta = TrustedApplication("c%d" % index)
        router.grant(ta, "svc")
        sim.process(caller(ta, index, index * 1e-7))
    sim.run()
    assert order == [0, 1, 2]


def test_duplicate_port_and_unknown_port_rejected():
    sim = Simulator()
    router = IPCRouter(sim)
    ta = TrustedApplication("svc")
    router.register_port(ta, "p")
    with pytest.raises(ConfigurationError):
        router.register_port(ta, "p")
    with pytest.raises(ConfigurationError):
        router.grant(ta, "ghost")

    def caller():
        yield from router.call(ta, "ghost", None)

    proc = sim.process(caller())
    with pytest.raises(ConfigurationError):
        sim.run_until(proc)
