"""Tests for the secure boot chain and TA image verification."""

import pytest

from repro.errors import IntegrityError, SecurityViolation
from repro.tee.boot import BootChain, BootImage, TAVerifier


def make_stages():
    return BootChain.sign_chain(
        [
            BootImage("bl2", b"bl2-code-v1"),
            BootImage("el3-monitor", b"monitor-code-v1"),
            BootImage("tee-os", b"tee-os-code-v1"),
        ]
    )


def test_clean_chain_boots_all_stages():
    stages = make_stages()
    chain = BootChain(rom_digest=stages[0].digest)
    assert chain.boot(stages) == ["bl2", "el3-monitor", "tee-os"]
    assert len(chain.measurements) == 3


def test_tampered_middle_stage_detected():
    stages = make_stages()
    chain = BootChain(rom_digest=stages[0].digest)
    evil = BootImage("el3-monitor", b"monitor-code-EVIL", stages[1].next_digest)
    with pytest.raises(IntegrityError, match="el3-monitor"):
        chain.boot([stages[0], evil, stages[2]])
    # Nothing after the tamper point ever ran.
    assert chain.booted_stages == ["bl2"]


def test_tampered_first_stage_detected_by_rom():
    stages = make_stages()
    chain = BootChain(rom_digest=stages[0].digest)
    evil_first = BootImage("bl2", b"bl2-code-EVIL", stages[0].next_digest)
    with pytest.raises(IntegrityError, match="bl2"):
        chain.boot([evil_first] + stages[1:])
    assert chain.booted_stages == []


def test_substituted_final_stage_detected():
    stages = make_stages()
    chain = BootChain(rom_digest=stages[0].digest)
    rogue_tee = BootImage("tee-os", b"rogue-tee-os")
    with pytest.raises(IntegrityError, match="tee-os"):
        chain.boot(stages[:2] + [rogue_tee])


def test_truncated_chain_detected():
    stages = make_stages()
    chain = BootChain(rom_digest=stages[0].digest)
    with pytest.raises(IntegrityError):
        chain.boot(stages[:2])  # bl2 vouches for a monitor that never ends the chain
    with pytest.raises(IntegrityError):
        chain.boot([])


def test_ta_verifier_accepts_enrolled_image():
    verifier = TAVerifier()
    verifier.enroll("llm-ta", b"llm-ta-image-v1")
    verifier.verify("llm-ta", b"llm-ta-image-v1")
    assert verifier.rejections == 0


def test_ta_verifier_rejects_modified_image():
    verifier = TAVerifier()
    verifier.enroll("llm-ta", b"llm-ta-image-v1")
    with pytest.raises(IntegrityError):
        verifier.verify("llm-ta", b"llm-ta-image-v1-BACKDOOR")
    assert verifier.rejections == 1


def test_ta_verifier_rejects_unknown_ta():
    verifier = TAVerifier()
    with pytest.raises(SecurityViolation):
        verifier.verify("sneaky-ta", b"anything")
