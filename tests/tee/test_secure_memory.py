"""Tests for the extend-and-shrink secure memory interface (§4.2)."""

import pytest

from repro.config import MiB, RK3588
from repro.errors import AccessDenied, ConfigurationError, IagoViolation, MemoryError_
from repro.hw import World
from repro.stack import build_stack
from repro.tee import TrustedApplication

GRANULE = 1 * MiB


@pytest.fixture
def world():
    stack = build_stack(
        spec=RK3588.with_memory(64 * MiB),
        granule=GRANULE,
        os_footprint=0,
        cma_regions={"params": 16 * MiB},
    )
    ta = TrustedApplication("llm")
    stack.tee_os.install_ta(ta)
    cma = stack.kernel.cma_regions["params"]
    region = stack.tee_os.create_secure_region(
        ta, "params", "params", cma.base_addr, cma.size_bytes, GRANULE
    )
    return stack, ta, region


def run(stack, gen):
    proc = stack.sim.process(gen)
    return stack.sim.run_until(proc)


def test_extend_allocated_then_protected_flow(world):
    stack, ta, region = world
    rng = run(stack, region.extend_allocated(4 * MiB))
    assert rng.base == region.base_addr
    assert region.allocated == 4 * MiB
    assert region.protected == 0
    # Allocated but unprotected: the REE can still write (I/O lands here).
    stack.board.memory.cpu_write(rng.base, b"encrypted", World.NONSECURE)
    run(stack, region.extend_protected(4 * MiB))
    assert region.protected == 4 * MiB
    # Now the REE is locked out, the TA is mapped in.
    with pytest.raises(AccessDenied):
        stack.board.memory.cpu_read(rng.base, 9, World.NONSECURE)
    assert stack.tee_os.ta_read(ta, rng.base, 9) == b"encrypted"


def test_successive_extends_are_adjacent(world):
    stack, _ta, region = world
    first = run(stack, region.extend_allocated(2 * MiB))
    second = run(stack, region.extend_allocated(3 * MiB))
    assert second.base == first.end
    assert region.allocated == 5 * MiB


def test_forged_cma_address_detected(world):
    stack, _ta, region = world
    stack.tz_driver.alloc_result_hook = lambda addr: addr + GRANULE

    def attack():
        yield from region.extend_allocated(2 * MiB)

    proc = stack.sim.process(attack())
    with pytest.raises(IagoViolation):
        stack.sim.run_until(proc)


def test_protect_beyond_allocated_rejected(world):
    stack, _ta, region = world
    run(stack, region.extend_allocated(2 * MiB))

    def too_much():
        yield from region.extend_protected(3 * MiB)

    proc = stack.sim.process(too_much())
    with pytest.raises(MemoryError_):
        stack.sim.run_until(proc)


def test_extend_beyond_capacity_rejected(world):
    stack, _ta, region = world

    def too_big():
        yield from region.extend_allocated(17 * MiB)

    proc = stack.sim.process(too_big())
    with pytest.raises(MemoryError_):
        stack.sim.run_until(proc)


def test_unaligned_sizes_rejected(world):
    stack, _ta, region = world

    def unaligned():
        yield from region.extend_allocated(MiB + 1)

    proc = stack.sim.process(unaligned())
    with pytest.raises(ConfigurationError):
        stack.sim.run_until(proc)


def test_shrink_scrubs_and_returns_memory(world):
    stack, ta, region = world
    rng = run(stack, region.extend_allocated(4 * MiB))
    run(stack, region.extend_protected(4 * MiB))
    stack.tee_os.ta_write(ta, rng.base + 3 * MiB, b"plaintext-weights")
    free_before = stack.kernel.cma_regions["params"].free_frames
    run(stack, region.shrink(2 * MiB))
    assert region.protected == 2 * MiB
    assert region.allocated == 2 * MiB
    # The released memory is REE-visible again — and zeroed.
    data = stack.board.memory.cpu_read(rng.base + 3 * MiB, 17, World.NONSECURE)
    assert data == b"\x00" * 17
    assert stack.kernel.cma_regions["params"].free_frames == free_before + 2
    # The TA lost its mapping on the shrunk tail.
    with pytest.raises(AccessDenied):
        stack.tee_os.ta_read(ta, rng.base + 3 * MiB, 4)
    # But retains the still-protected head.
    stack.tee_os.ta_read(ta, rng.base, 4)


def test_shrink_all_releases_everything(world):
    stack, _ta, region = world
    run(stack, region.extend_allocated(6 * MiB))
    run(stack, region.extend_protected(6 * MiB))
    run(stack, region.shrink_all())
    assert region.protected == 0
    assert region.allocated == 0
    # All CMA frames are free again.
    assert stack.kernel.cma_regions["params"].free_frames == 16


def test_shrink_with_unprotected_tail_rejected(world):
    stack, _ta, region = world
    run(stack, region.extend_allocated(4 * MiB))
    run(stack, region.extend_protected(2 * MiB))

    def bad():
        yield from region.shrink(MiB)

    proc = stack.sim.process(bad())
    with pytest.raises(MemoryError_):
        stack.sim.run_until(proc)


def test_fifo_lifo_pattern_keeps_region_contiguous(world):
    stack, _ta, region = world
    for _ in range(4):
        run(stack, region.extend_allocated(2 * MiB))
        run(stack, region.extend_protected(2 * MiB))
    run(stack, region.shrink(4 * MiB))
    run(stack, region.shrink(2 * MiB))
    # Extend again: must continue exactly at the new end.
    rng = run(stack, region.extend_allocated(2 * MiB))
    assert rng.base == region.base_addr + 2 * MiB


def test_delegated_read_into_unprotected_memory(world):
    stack, _ta, region = world
    stack.kernel.fs.create("/model.enc", b"E" * (2 * MiB))
    rng = run(stack, region.extend_allocated(2 * MiB))

    def load():
        n = yield from stack.tz_driver.delegated_read_into("/model.enc", 0, 2 * MiB, rng.base)
        return n

    assert run(stack, load()) == 2 * MiB
    assert stack.board.memory.cpu_read(rng.base, 4, World.NONSECURE) == b"EEEE"


def test_delegated_read_into_protected_memory_faults(world):
    stack, _ta, region = world
    stack.kernel.fs.create("/model.enc", b"E" * MiB)
    rng = run(stack, region.extend_allocated(MiB))
    run(stack, region.extend_protected(MiB))

    def load():
        yield from stack.tz_driver.delegated_read_into("/model.enc", 0, MiB, rng.base)

    proc = stack.sim.process(load())
    with pytest.raises(AccessDenied):
        stack.sim.run_until(proc)
