"""Tests for TEE OS isolation, the key service, and TEE-managed sync."""

import pytest

from repro.config import MiB, RK3588
from repro.crypto import derive_key, wrap_model_key
from repro.errors import AccessDenied, ConfigurationError, ProtocolError, SecurityViolation
from repro.hw import AddrRange, World
from repro.stack import build_stack
from repro.tee import ShadowThreadPool, TEEMutex, TrustedApplication


@pytest.fixture
def stack():
    return build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)


def test_ta_install_and_duplicate_rejected(stack):
    ta = TrustedApplication("llm")
    stack.tee_os.install_ta(ta)
    assert stack.tee_os.ta("llm") is ta
    with pytest.raises(ConfigurationError):
        stack.tee_os.install_ta(TrustedApplication("llm"))
    with pytest.raises(ConfigurationError):
        stack.tee_os.ta("ghost")


def test_ta_address_space_isolation(stack):
    llm = TrustedApplication("llm")
    other = TrustedApplication("other")
    stack.tee_os.install_ta(llm)
    stack.tee_os.install_ta(other)
    rng = AddrRange(4 * MiB, MiB)
    stack.tee_os.map_into_ta(llm, rng)
    stack.tee_os.ta_write(llm, rng.base, b"weights")
    assert stack.tee_os.ta_read(llm, rng.base, 7) == b"weights"
    # A different TA cannot touch the same physical range.
    with pytest.raises(AccessDenied):
        stack.tee_os.ta_read(other, rng.base, 7)
    with pytest.raises(AccessDenied):
        stack.tee_os.ta_write(other, rng.base, b"tamper")


def test_ta_access_spanning_adjacent_mappings(stack):
    ta = TrustedApplication("llm")
    stack.tee_os.install_ta(ta)
    stack.tee_os.map_into_ta(ta, AddrRange(0, MiB))
    stack.tee_os.map_into_ta(ta, AddrRange(MiB, MiB))
    # One read spanning both mapped pieces is legal.
    stack.tee_os.ta_read(ta, MiB - 16, 32)
    # But reading past the second mapping is not.
    with pytest.raises(AccessDenied):
        stack.tee_os.ta_read(ta, 2 * MiB - 16, 32)


def test_unmap_splits_mappings(stack):
    ta = TrustedApplication("llm")
    stack.tee_os.install_ta(ta)
    stack.tee_os.map_into_ta(ta, AddrRange(0, 4 * MiB))
    stack.tee_os.unmap_from_ta(ta, AddrRange(MiB, MiB))
    stack.tee_os.ta_read(ta, 0, MiB)
    stack.tee_os.ta_read(ta, 2 * MiB, MiB)
    with pytest.raises(AccessDenied):
        stack.tee_os.ta_read(ta, MiB, 16)
    with pytest.raises(ConfigurationError):
        stack.tee_os.unmap_from_ta(ta, AddrRange(32 * MiB, MiB))


def test_model_key_acl(stack):
    llm = TrustedApplication("llm")
    rogue = TrustedApplication("rogue")
    stack.tee_os.install_ta(llm)
    stack.tee_os.install_ta(rogue)
    hw = stack.keystore.hardware_key(World.SECURE)
    model_key = derive_key(b"provider", "m1")
    wrapped = wrap_model_key(hw, model_key, "m1")
    stack.tee_os.grant_model_access("m1", "llm")
    assert stack.tee_os.unwrap_key_for(llm, wrapped, "m1") == model_key
    with pytest.raises(SecurityViolation):
        stack.tee_os.unwrap_key_for(rogue, wrapped, "m1")


# ---------------------------------------------------------------------------
# TEE-managed synchronization
# ---------------------------------------------------------------------------
def test_mutex_enforces_exclusion_and_holder(stack):
    sim = stack.sim
    mutex = TEEMutex(sim, "order")
    log = []

    def thread(tag, hold):
        yield from mutex.acquire(tag)
        log.append(("enter", tag, sim.now))
        yield sim.timeout(hold)
        log.append(("exit", tag, sim.now))
        mutex.release(tag)

    sim.process(thread("a", 1.0))
    sim.process(thread("b", 1.0))
    sim.run()
    assert [entry[1] for entry in log] == ["a", "a", "b", "b"]


def test_mutex_release_by_non_holder_rejected(stack):
    sim = stack.sim
    mutex = TEEMutex(sim)

    def holder():
        yield from mutex.acquire("a")

    proc = sim.process(holder())
    sim.run_until(proc)
    with pytest.raises(ProtocolError):
        mutex.release("b")
    mutex.release("a")


def test_malicious_ree_schedule_cannot_violate_ta_order(stack):
    """The REE may activate shadow threads in any order; TEE-managed
    primitives still force the TA-requested execution order (§6)."""
    sim = stack.sim
    from repro.tee import TEECondition

    pool = ShadowThreadPool(sim, activation_latency=1e-5)
    produced = TEECondition(sim, "produced")
    order = []

    def producer():
        yield sim.timeout(0.5)  # the work the consumer depends on
        order.append("producer")
        produced.notify_all()

    def consumer():
        # Depends on the producer; guarded by the TEE condition, whose
        # wait queue lives in the TEE — the REE cannot bypass it.
        yield produced.wait()
        order.append("consumer")

    # Malicious REE scheduler: activates the consumer FIRST and delays
    # the producer's shadow thread.
    pool.spawn(consumer(), name="consumer")

    def delayed_producer_activation():
        yield sim.timeout(0.2)
        pool.spawn(producer(), name="producer")

    sim.process(delayed_producer_activation())
    sim.run()
    assert order == ["producer", "consumer"]
    assert pool.activations == 2


def test_condition_notify_all(stack):
    sim = stack.sim
    from repro.tee import TEECondition

    cond = TEECondition(sim)
    woken = []

    def waiter(tag):
        yield cond.wait()
        woken.append((tag, sim.now))

    def notifier():
        yield sim.timeout(2.0)
        assert cond.notify_all() == 2

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.process(notifier())
    sim.run()
    assert sorted(w[0] for w in woken) == ["a", "b"]
    assert all(w[1] == 2.0 for w in woken)
