"""Tests for TEE-REE NPU time-sharing: the co-driver protocol (§4.3)."""

import pytest

from repro.config import MiB, PAGE_SIZE, RK3588
from repro.errors import IagoViolation
from repro.hw import AddrRange, NPUJob, World
from repro.stack import build_stack

PG = PAGE_SIZE
S = World.SECURE
N = World.NONSECURE


@pytest.fixture
def stack():
    stack = build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)
    # One secure TZASC region holds the job contexts (slot 0).
    stack.board.tzasc.configure(S, 0, 8 * MiB, 4 * MiB)
    stack.tee_npu.allowed_slots = [0]
    return stack


def secure_job(duration=0.01, base=8 * MiB):
    return NPUJob(
        duration=duration,
        commands=AddrRange(base, 64),
        io_pagetable=AddrRange(base + PG, 64),
        inputs=[AddrRange(base + 2 * PG, 256)],
        outputs=[AddrRange(base + 3 * PG, 64)],
        tag="secure",
    )


def nonsecure_job(duration=0.01, base=0):
    return NPUJob(
        duration=duration,
        commands=AddrRange(base, 64),
        io_pagetable=AddrRange(base + PG, 64),
        inputs=[AddrRange(base + 2 * PG, 128)],
        outputs=[AddrRange(base + 3 * PG, 64)],
        tag="ree",
    )


def test_secure_job_completes_through_shadow_scheduling(stack):
    sim = stack.sim
    stack.board.memory.cpu_write(8 * MiB + 2 * PG, b"secure-input", S)

    def run():
        job = yield from stack.tee_npu.submit_secure_job(secure_job())
        return job

    proc = sim.process(run())
    job = sim.run_until(proc)
    assert job.faulted is None
    assert stack.tee_npu.secure_jobs_completed == 1
    assert stack.ree_npu.shadow_jobs_forwarded == 1
    # Output landed inside the secure region (written via granted DMA).
    out = stack.board.memory.cpu_read(8 * MiB + 3 * PG, 64, S)
    assert out != b"\x00" * 64
    # After completion the grant is revoked and the NPU is non-secure.
    assert stack.board.tzpc.device_world("npu") is N
    assert stack.board.gic.line_world(stack.board.npu.irq) is N
    assert stack.board.tzasc.region(0).allowed_devices == set()


def test_secure_and_nonsecure_jobs_share_one_queue(stack):
    sim = stack.sim
    finished = []

    def ree_app():
        done = stack.ree_npu.submit(nonsecure_job(duration=0.05))
        yield done
        finished.append(("ree", sim.now))

    def tee_app():
        yield sim.timeout(0.001)
        yield from stack.tee_npu.submit_secure_job(secure_job(duration=0.05))
        finished.append(("tee", sim.now))

    sim.process(ree_app())
    sim.process(tee_app())
    sim.run()
    assert [tag for tag, _ in finished] == ["ree", "tee"]
    # The secure job waited for the non-secure one (single NPU).
    assert finished[1][1] > finished[0][1]


def test_replay_attack_rejected(stack):
    sim = stack.sim

    def run_then_replay():
        record = stack.tee_npu.init_job(secure_job())
        yield from stack.tee_npu.issue_job(record)
        yield record.completion
        # Compromised REE replays the completed take-over verbatim.
        yield from stack.ree_npu.attack_replay_take_over(record.shadow_id, record.seq)

    proc = sim.process(run_then_replay())
    with pytest.raises(IagoViolation, match="replay|state"):
        sim.run_until(proc)
    assert stack.tee_npu.take_over_rejections == 1
    assert stack.tee_npu.secure_jobs_completed == 1


def test_forged_take_over_for_unknown_job_rejected(stack):
    sim = stack.sim

    def forge():
        yield from stack.ree_npu.attack_forge_take_over(999, 0)

    proc = sim.process(forge())
    with pytest.raises(IagoViolation, match="unknown"):
        sim.run_until(proc)


def test_premature_take_over_before_issue_rejected(stack):
    sim = stack.sim
    record = stack.tee_npu.init_job(secure_job())

    def premature():
        yield from stack.ree_npu.attack_forge_take_over(record.shadow_id, record.seq)

    proc = sim.process(premature())
    with pytest.raises(IagoViolation, match="state"):
        sim.run_until(proc)


def test_reorder_attack_rejected_by_sequence_numbers(stack):
    sim = stack.sim

    def reorder():
        first = stack.tee_npu.init_job(secure_job())
        second = stack.tee_npu.init_job(secure_job())
        # Issue both shadow jobs while the NPU chews on a long REE job,
        # so they sit in the queue together...
        stack.ree_npu.submit(nonsecure_job(duration=0.1))
        yield from stack.tee_npu.issue_job(first)
        yield from stack.tee_npu.issue_job(second)
        # ...then the compromised kernel swaps them.
        stack.ree_npu.attack_reorder_queue()
        yield first.completion

    proc = sim.process(reorder())
    with pytest.raises(IagoViolation, match="sequence"):
        sim.run()
    assert stack.tee_npu.take_over_rejections == 1


def test_switch_ordering_prevents_inflight_dma_attack(stack):
    """The paper's step-ordering argument, demonstrated both ways.

    A compromised REE kernel MMIO-launches a job (bypassing its own
    driver queue) whose *output* points at secure memory, then schedules
    a secure job.  With the correct switch order the TEE driver waits for
    the in-flight job before granting the NPU TZASC access, so the
    malicious DMA faults.  With the grant issued before the drain
    (unsafe), the malicious write lands in secure memory.
    """
    sim = stack.sim
    secret_addr = 8 * MiB + 512 * PG  # inside the secure region
    evil = NPUJob(
        duration=0.05,
        commands=AddrRange(0, 64),
        io_pagetable=AddrRange(PG, 64),
        inputs=[AddrRange(2 * PG, 64)],
        outputs=[AddrRange(secret_addr, 64)],
        tag="evil",
    )

    def attack():
        stack.board.npu.launch(N, evil)  # direct MMIO, not the queue
        yield sim.timeout(1e-4)  # evil job is now in flight
        yield from stack.tee_npu.submit_secure_job(secure_job(duration=0.01))

    proc = sim.process(attack())
    sim.run_until(proc)
    assert evil.faulted is not None and evil.faulted.startswith("output:")
    assert stack.board.memory.cpu_read(secret_addr, 64, S) == b"\x00" * 64


def test_switch_ordering_violation_enables_the_attack(stack):
    """Negative control: skipping the wait really leaks (model sanity)."""
    sim = stack.sim
    stack.tee_npu.unsafe_skip_wait_idle = True
    secret_addr = 8 * MiB + 512 * PG
    evil = NPUJob(
        duration=0.05,
        commands=AddrRange(0, 64),
        io_pagetable=AddrRange(PG, 64),
        inputs=[AddrRange(2 * PG, 64)],
        outputs=[AddrRange(secret_addr, 64)],
        tag="evil",
    )

    def attack():
        stack.board.npu.launch(N, evil)  # direct MMIO, not the queue
        yield sim.timeout(1e-4)
        yield from stack.tee_npu.submit_secure_job(secure_job(duration=0.2))

    proc = sim.process(attack())
    sim.run_until(proc)
    # The malicious in-flight job completed while the NPU held the TZASC
    # grant: its DMA landed in secure memory.
    assert evil.faulted is None
    assert stack.board.memory.cpu_read(secret_addr, 64, S) != b"\x00" * 64


def test_world_switch_overhead_accounted(stack):
    sim = stack.sim

    def run():
        yield from stack.tee_npu.submit_secure_job(secure_job())

    proc = sim.process(run())
    sim.run_until(proc)
    tz = stack.spec.trustzone
    expected_min = 2 * (tz.tzpc_config_time + tz.gic_config_time + tz.tzasc_config_time)
    assert stack.tee_npu.world_switches == 1
    assert stack.tee_npu.world_switch_time >= expected_min * 0.999


def test_reinit_on_switch_costs_driver_reinit(stack):
    sim = stack.sim
    stack.tee_npu.reinit_on_switch = True

    def run():
        yield from stack.tee_npu.submit_secure_job(secure_job(duration=0.0))

    proc = sim.process(run())
    sim.run_until(proc)
    assert stack.tee_npu.world_switch_time >= 2 * stack.spec.npu.driver_reinit_time


def test_nonsecure_job_after_secure_one_still_works(stack):
    sim = stack.sim
    results = []

    def sequence():
        yield from stack.tee_npu.submit_secure_job(secure_job())
        done = stack.ree_npu.submit(nonsecure_job())
        job = yield done
        results.append(job)

    proc = sim.process(sequence())
    sim.run_until(proc)
    assert results[0].faulted is None
    assert stack.board.npu.jobs_completed == 2
