"""Tests for remote attestation and model-key provisioning."""

import pytest

from repro.crypto import HardwareKeyStore, derive_key
from repro.errors import SecurityViolation
from repro.tee.attestation import (
    AttestationService,
    DeviceAttestor,
    ModelProvider,
    device_unwrap_provisioned_key,
)
from repro.tee.boot import BootChain, BootImage

MODEL_KEY = derive_key(b"provider", "llama")


def make_device(device_id="dev-1", code=b"tee-os-v1"):
    keystore = HardwareKeyStore(device_id.encode())
    stages = BootChain.sign_chain(
        [BootImage("bl2", b"bl2-v1"), BootImage("tee-os", code)]
    )
    chain = BootChain(rom_digest=stages[0].digest)
    chain.boot(stages)
    return keystore, chain, DeviceAttestor(device_id, keystore, chain), stages


@pytest.fixture
def setup():
    keystore, chain, attestor, stages = make_device()
    service = AttestationService()
    service.enroll_device("dev-1", keystore)
    provider = ModelProvider(service, chain.measurements, "llama", MODEL_KEY)
    return keystore, attestor, service, provider


def test_golden_device_gets_a_working_key(setup):
    keystore, attestor, _service, provider = setup
    quote = attestor.quote(provider.challenge())
    wrapped = provider.provision(quote)
    assert wrapped != MODEL_KEY
    assert device_unwrap_provisioned_key(keystore, wrapped, "llama") == MODEL_KEY
    assert "dev-1" in provider.provisioned


def test_jailbroken_boot_chain_is_refused(setup):
    _keystore, _attestor, service, provider = setup
    # A device with a modified TEE OS: its (self-consistent) boot chain
    # measures differently, so its honest quote fails the golden check.
    keystore2, chain2, attestor2, _ = make_device("dev-2", code=b"tee-os-JAILBREAK")
    service.enroll_device("dev-2", keystore2)
    quote = attestor2.quote(provider.challenge())
    with pytest.raises(SecurityViolation, match="non-golden"):
        provider.provision(quote)
    assert provider.rejections == 1


def test_unknown_device_refused(setup):
    _keystore, _attestor, _service, provider = setup
    keystore3, _chain, attestor3, _ = make_device("dev-ghost")
    quote = attestor3.quote(provider.challenge())
    with pytest.raises(SecurityViolation, match="verification"):
        provider.provision(quote)


def test_forged_mac_refused(setup):
    _keystore, attestor, _service, provider = setup
    quote = attestor.quote(provider.challenge())
    forged = type(quote)(quote.device_id, quote.measurements, quote.nonce, b"\x00" * 32)
    with pytest.raises(SecurityViolation, match="verification"):
        provider.provision(forged)


def test_nonce_single_use(setup):
    _keystore, attestor, _service, provider = setup
    nonce = provider.challenge()
    quote = attestor.quote(nonce)
    provider.provision(quote)
    with pytest.raises(SecurityViolation, match="nonce"):
        provider.provision(quote)  # replay


def test_foreign_nonce_refused(setup):
    _keystore, attestor, _service, provider = setup
    quote = attestor.quote(b"attacker-chosen!")
    with pytest.raises(SecurityViolation, match="nonce"):
        provider.provision(quote)


def test_quote_requires_completed_boot():
    keystore = HardwareKeyStore(b"dev-x")
    chain = BootChain(rom_digest=b"\x00" * 32)  # never booted
    attestor = DeviceAttestor("dev-x", keystore, chain)
    with pytest.raises(SecurityViolation, match="secure boot"):
        attestor.quote(b"n" * 16)
