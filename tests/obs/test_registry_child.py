"""Child registries: constant labels with one deterministic export."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry


def test_child_writes_land_in_parent_with_constant_label():
    reg = MetricsRegistry()
    dev0 = reg.child(device="dev0")
    dev1 = reg.child(device="dev1")
    dev0.counter("requests_total").inc(3, tenant="a")
    dev1.counter("requests_total").inc(5, tenant="a")
    parent = reg.counter("requests_total")
    assert parent.value(device="dev0", tenant="a") == 3
    assert parent.value(device="dev1", tenant="a") == 5


def test_child_reads_are_scoped_to_own_device():
    reg = MetricsRegistry()
    dev0 = reg.child(device="dev0")
    dev1 = reg.child(device="dev1")
    dev0.counter("shed_total").inc(2, reason="queue-full")
    dev1.counter("shed_total").inc(7, reason="queue-full")
    assert dev0.counter("shed_total").value(reason="queue-full") == 2
    assert dev1.counter("shed_total").value(reason="queue-full") == 7
    # samples() filters to this device's series only.
    assert dev0.counter("shed_total").samples() == [
        ((("device", "dev0"), ("reason", "queue-full")), 2.0)
    ]
    assert dev0.counter("shed_total").labeled("reason") == {"queue-full": 2.0}


def test_histogram_child_observe_and_sum():
    reg = MetricsRegistry()
    dev0 = reg.child(device="dev0")
    hist = dev0.histogram("ttft_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    assert hist.value() == 2
    assert hist.sum() == pytest.approx(0.55)
    assert reg.histogram("ttft_seconds", buckets=(0.1, 1.0)).value(device="dev0") == 2


def test_render_orders_device_series_deterministically():
    """Label keys are canonically sorted, so the exposition text does not
    depend on which device wrote first."""
    a = MetricsRegistry()
    a.child(device="dev0").counter("reqs").inc()
    a.child(device="dev1").counter("reqs").inc(2)
    b = MetricsRegistry()
    b.child(device="dev1").counter("reqs").inc(2)
    b.child(device="dev0").counter("reqs").inc()
    assert a.render() == b.render()
    lines = [l for l in a.render().splitlines() if l.startswith("reqs{")]
    assert lines == ['reqs{device="dev0"} 1', 'reqs{device="dev1"} 2']


def test_children_nest_and_reject_label_collisions():
    reg = MetricsRegistry()
    dev = reg.child(device="dev0")
    lane = dev.child(lane="interactive")
    lane.counter("spans").inc()
    assert reg.counter("spans").value(device="dev0", lane="interactive") == 1
    with pytest.raises(ConfigurationError):
        dev.child(device="dev1")
    with pytest.raises(ConfigurationError):
        dev.counter("spans").inc(device="other")
    with pytest.raises(ConfigurationError):
        reg.child()


def test_child_get_returns_bound_view_or_none():
    reg = MetricsRegistry()
    dev = reg.child(device="dev0")
    assert dev.get("missing") is None
    dev.counter("up").inc()
    view = dev.get("up")
    assert view.value() == 1
    assert view.name == "up" and view.kind == "counter"
