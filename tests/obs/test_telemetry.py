"""Telemetry unit coverage: store, collector, accountant, sampler."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, RateRule, TelemetryConfig, TimeSeriesStore
from repro.obs.alerts import AlertEngine
from repro.obs.telemetry import TailSampler, TelemetryCollector, TenantAccountant
from repro.sim import Simulator


def _key(**labels):
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------
def test_config_validation():
    TelemetryConfig()  # defaults valid
    with pytest.raises(ConfigurationError):
        TelemetryConfig(scrape_interval=0.0)
    with pytest.raises(ConfigurationError):
        TelemetryConfig(ring_capacity=1)
    with pytest.raises(ConfigurationError):
        TelemetryConfig(downsample_factor=1)
    with pytest.raises(ConfigurationError):
        TelemetryConfig(tail_sample_rate=1.5)
    with pytest.raises(ConfigurationError):
        TelemetryConfig(trace_capacity=0)


# ---------------------------------------------------------------------------
# ring + downsampling
# ---------------------------------------------------------------------------
def test_ring_downsamples_by_stride_and_bounds_memory():
    config = TelemetryConfig(ring_capacity=10, downsample_factor=10, resolutions=3)
    store = TimeSeriesStore(config)
    for i in range(1000):
        store.append("c_total", "counter", _key(), float(i), float(i))
    raw = store.samples("c_total", tier=0)
    mid = store.samples("c_total", tier=1)
    coarse = store.samples("c_total", tier=2)
    # Every tier is bounded at the ring capacity.
    assert len(raw) == len(mid) == len(coarse) == 10
    # Raw keeps the newest samples; each coarser tier keeps every
    # factor-th sample of the finer one (group-boundary values).
    assert [t for t, _v in raw] == [float(t) for t in range(990, 1000)]
    assert [t for t, _v in mid] == [float(t) for t in range(909, 1000, 10)]
    assert [t for t, _v in coarse] == [float(t) for t in range(99, 1000, 100)]
    # The cascaded samples are the *same* values, not aggregates.
    assert all(t == v for t, v in mid) and all(t == v for t, v in coarse)


def test_store_rejects_kind_conflicts():
    store = TimeSeriesStore()
    store.append("m", "counter", _key(), 0.0, 1.0)
    with pytest.raises(ConfigurationError):
        store.append("m", "gauge", _key(), 1.0, 2.0)


# ---------------------------------------------------------------------------
# windowed queries
# ---------------------------------------------------------------------------
def test_rate_and_delta_from_cumulative_samples():
    store = TimeSeriesStore()
    # 2 events/s for 100 s, sampled every 5 s.
    for i in range(21):
        t = i * 5.0
        store.append("ev_total", "counter", _key(), t, 2.0 * t)
    assert store.rate("ev_total", 60.0, 100.0) == pytest.approx(2.0)
    assert store.delta("ev_total", 60.0, 100.0) == pytest.approx(120.0)
    # A window wider than the data anchors at the oldest kept sample.
    assert store.rate("ev_total", 1e6, 100.0) == pytest.approx(2.0)
    # A single sample cannot produce a rate.
    other = TimeSeriesStore()
    other.append("ev_total", "counter", _key(), 0.0, 5.0)
    assert other.rate("ev_total", 60.0, 100.0) == 0.0


def test_queries_sum_across_subset_matching_series():
    store = TimeSeriesStore()
    for i in range(11):
        t = i * 5.0
        store.append("ev_total", "counter", _key(device="a", tenant="x"), t, 1.0 * t)
        store.append("ev_total", "counter", _key(device="b", tenant="x"), t, 3.0 * t)
    assert store.rate("ev_total", 50.0, 50.0) == pytest.approx(4.0)
    assert store.rate("ev_total", 50.0, 50.0, device="a") == pytest.approx(1.0)
    assert store.rate("ev_total", 50.0, 50.0, device="b") == pytest.approx(3.0)
    assert store.rate("ev_total", 50.0, 50.0, tenant="x") == pytest.approx(4.0)
    assert store.rate("ev_total", 50.0, 50.0, device="c") == 0.0


def test_window_query_falls_back_to_coarser_tier():
    config = TelemetryConfig(ring_capacity=10, downsample_factor=10, resolutions=2)
    store = TimeSeriesStore(config)
    for i in range(200):
        store.append("ev_total", "counter", _key(), float(i), 2.0 * i)
    # Raw tier only covers [190, 199]; a 100 s window must come from the
    # downsampled tier, which reaches back to t=109.
    assert store.samples("ev_total", tier=0)[0][0] == 190.0
    assert store.samples("ev_total", tier=1)[0][0] == 109.0
    assert store.rate("ev_total", 100.0, 199.0) == pytest.approx(2.0)


def test_gauge_avg_over_window():
    store = TimeSeriesStore()
    for i in range(10):
        store.append("depth", "gauge", _key(), float(i), float(i % 2))
    assert store.avg("depth", 4.0, 9.0) == pytest.approx((0 + 1 + 0 + 1) / 4.0)
    assert store.latest("depth") == 1.0


def test_histogram_quantile_windowed():
    store = TimeSeriesStore()
    bounds = (0.1, 1.0, 10.0)
    # Snapshot at t=0: empty; at t=60: 80 obs <= 0.1, 20 in (1, 10].
    store.append_histogram("lat", _key(), 0.0, 0, 0.0, (0, 0, 0), bounds)
    store.append_histogram("lat", _key(), 60.0, 100, 0.0, (80, 80, 100), bounds)
    assert store.quantile("lat", 0.5, 120.0, 60.0) == pytest.approx(0.1 * 50 / 80)
    # p90 lands in the (1, 10] bucket: interpolated past the 1.0 edge.
    q90 = store.quantile("lat", 0.9, 120.0, 60.0)
    assert 1.0 < q90 <= 10.0
    # Out-of-window history is excluded: add a later snapshot with no new
    # observations; a short window sees zero delta.
    store.append_histogram("lat", _key(), 120.0, 100, 0.0, (80, 80, 100), bounds)
    assert store.quantile("lat", 0.9, 30.0, 120.0) == 0.0
    with pytest.raises(ConfigurationError):
        store.quantile("lat", 1.5, 60.0, 60.0)


def test_store_export_is_deterministic():
    def build():
        store = TimeSeriesStore(TelemetryConfig(ring_capacity=8))
        for i in range(40):
            store.append("a_total", "counter", _key(device="d0"), float(i), float(i))
            store.append("b_depth", "gauge", _key(), float(i), float(i % 3))
        return json.dumps(store.to_dict(), sort_keys=True)

    assert build() == build()


# ---------------------------------------------------------------------------
# collector
# ---------------------------------------------------------------------------
def test_collector_scrapes_registry_on_interval_with_pre_scrape_hooks():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("work_total")
    gauge = registry.gauge("busy")
    store = TimeSeriesStore(TelemetryConfig(scrape_interval=1.0))
    collector = TelemetryCollector(sim, registry, store)
    refreshed = []
    collector.pre_scrape.append(lambda: refreshed.append(sim.now) or gauge.set(sim.now))

    def load():
        for _ in range(10):
            counter.inc(3)
            yield sim.timeout(1.0)

    sim.process(load(), name="load")
    collector.start(until=10.0)
    sim.run()
    assert collector.scrapes == 10
    # Hooks ran at every scrape instant, refreshing the gauge first.
    assert refreshed == [float(t) for t in range(1, 11)]
    assert store.latest("busy") == 10.0
    # Increments land at t=0..9 (value 18 by the t=5 scrape, 30 by t=10);
    # the 5 s window anchors on the t=5 scrape: (30-18)/5.
    assert store.delta("work_total", 5.0, 10.0) == pytest.approx(12.0)
    assert store.rate("work_total", 5.0, 10.0) == pytest.approx(2.4)
    assert store.rate("work_total", 9.0, 10.0) == pytest.approx(24.0 / 9.0)


def test_rate_rule_needs_store_and_fires_on_windowed_rate():
    sim = Simulator()
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        AlertEngine(sim, registry, rules=[RateRule("r", "ev_total", ">", 1.0)])
    store = TimeSeriesStore()
    engine = AlertEngine(
        sim, registry,
        rules=[RateRule("hot", "ev_total", ">", 1.5, window=10.0)],
        store=store,
    )

    def feed():
        for i in range(30):
            yield sim.timeout(1.0)
            # 2/s for the first 15 s, then flat.
            value = 2.0 * min(sim.now, 15.0)
            store.append("ev_total", "counter", (), sim.now, value)
            engine.tick()

    sim.process(feed(), name="feed")
    sim.run()
    states = [(t.name, t.state) for t in engine.transitions]
    assert ("hot", "firing") in states and ("hot", "resolved") in states
    assert not engine.firing()


# ---------------------------------------------------------------------------
# tenant accountant
# ---------------------------------------------------------------------------
class _FakeAttempt:
    def __init__(self, device, prompt=100, generated=10, dispatched=1.0, end=3.0,
                 state="done", hedge=False, first_token=2.0, arrived=0.0):
        self.device_id = device
        self.prompt_tokens = prompt
        self.tokens_generated = generated
        self.arrived_at = arrived
        self.dispatched_at = dispatched
        self.finished_at = end if state == "done" else None
        self.cancelled_at = end if state == "cancelled" else None
        self.failed_at = end if state == "failed" else None
        self.first_token_at = first_token if state == "done" else None
        self.state = state
        self.hedge = hedge


class _FakeRequest:
    def __init__(self, tenant="chat", model_id="m"):
        self.tenant = tenant
        self.model_id = model_id


class _FakeTicket:
    def __init__(self, ticket_id, attempts, winner=None, state="done",
                 hedges=0, slo_attained=True, tenant="chat"):
        self.ticket_id = ticket_id
        self.request = _FakeRequest(tenant=tenant)
        self.attempts = attempts
        self.winner = winner if winner is not None else (attempts[0] if attempts else None)
        self.state = state
        self.hedges = hedges
        self.slo_attained = slo_attained
        self.arrived_at = 0.0
        self.failures = []

    @property
    def device_id(self):
        latest = self.winner or (self.attempts[-1] if self.attempts else None)
        return latest.device_id if latest else None


def test_accountant_meters_winner_and_bills_every_attempt_residency():
    acct = TenantAccountant({"m": 1000})
    winner = _FakeAttempt("d0", prompt=100, generated=10, dispatched=1.0, end=3.0)
    loser = _FakeAttempt("d1", prompt=100, generated=0, dispatched=2.0, end=3.0,
                         state="cancelled", hedge=True)
    acct.note_done(_FakeTicket(1, [winner, loser]))
    data = acct.to_dict()
    chat = data["tenants"]["chat"]
    # Tokens land on the winner's device only.
    assert chat["d0"]["tokens_in"] == 100 and chat["d0"]["tokens_out"] == 10
    assert "tokens_in" not in chat.get("d1", {}) or chat["d1"]["tokens_in"] == 0
    # Residency: both attempts occupied secure memory while dispatched.
    assert chat["d0"]["residency_seconds"] == pytest.approx(2.0)
    assert chat["d1"]["residency_seconds"] == pytest.approx(1.0)
    # KV byte-seconds: final footprint x kv bytes/token x residency.
    assert chat["d0"]["kv_byte_seconds"] == pytest.approx(110 * 1000 * 2.0)
    assert chat["d1"]["kv_byte_seconds"] == pytest.approx(100 * 1000 * 1.0)
    assert data["totals"]["chat"]["requests"] == 1


def test_accountant_top_k_and_prometheus_export_are_deterministic():
    acct = TenantAccountant({"m": 1})
    for i, tenant in enumerate(["chat", "mail", "indexer"]):
        for n in range(i + 1):
            attempt = _FakeAttempt("d%d" % n, generated=5 * (i + 1))
            acct.note_done(_FakeTicket(i * 10 + n, [attempt], tenant=tenant))
    top = acct.top_k("tokens_out", 2)
    assert top == [("indexer", 45), ("mail", 20)]
    # Ties rank by name.
    acct2 = TenantAccountant()
    acct2.note_shed(_FakeTicket(1, [], state="shed", tenant="b"))
    acct2.note_shed(_FakeTicket(2, [], state="shed", tenant="a"))
    assert acct2.top_k("sheds") == [("a", 1), ("b", 1)]
    prom = acct.render_prometheus()
    assert prom == acct.render_prometheus()
    assert '# TYPE fleet_tenant_tokens_out_total counter' in prom
    assert 'fleet_tenant_tokens_out_total{device="d0",tenant="chat"} 5' in prom
    assert json.dumps(acct.to_dict(), sort_keys=True) == json.dumps(
        acct.to_dict(), sort_keys=True
    )


def test_accountant_failed_and_budget_meters():
    acct = TenantAccountant()
    ticket = _FakeTicket(3, [_FakeAttempt("d0", state="failed")], state="failed")
    ticket.winner = None
    acct.note_failed(ticket)
    acct.note_budget_spend("chat", "d1")
    acct.note_budget_spend("chat", None)
    data = acct.to_dict()
    assert data["tenants"]["chat"]["d0"]["failed"] == 1
    assert data["tenants"]["chat"]["d1"]["hedge_spend"] == 1
    assert data["tenants"]["chat"]["-"]["hedge_spend"] == 1
    assert data["totals"]["chat"]["hedge_spend"] == 2


# ---------------------------------------------------------------------------
# tail sampler
# ---------------------------------------------------------------------------
def test_sampler_keeps_all_anomalous_tickets():
    sampler = TailSampler(TelemetryConfig(tail_sample_rate=0.0))
    cases = [
        _FakeTicket(1, [_FakeAttempt("d0", state="failed")], state="failed"),
        _FakeTicket(2, [], state="shed"),
        _FakeTicket(3, [_FakeAttempt("d0")], hedges=1),
        _FakeTicket(4, [_FakeAttempt("d0")], slo_attained=False),
    ]
    reasons = [sampler.offer(t) for t in cases]
    assert reasons == ["failed", "shed", "hedged", "slo-violated"]
    assert sampler.kept_total == 4 and sampler.dropped == 0
    # With rate 0, every fast ticket drops without building a trace.
    fast = _FakeTicket(5, [_FakeAttempt("d0")])
    assert sampler.offer(fast) is None
    assert sampler.dropped == 1 and len(sampler.traces) == 4


def test_sampler_fast_path_is_seeded_order_independent_and_rate_bounded():
    config = TelemetryConfig(tail_sample_rate=0.05, tail_seed=7)
    decisions = {}
    sampler = TailSampler(config)
    for ticket_id in range(2000):
        decisions[ticket_id] = sampler._keep_fast(ticket_id)
    # Same seed, any order: identical decisions.
    other = TailSampler(config)
    for ticket_id in reversed(range(2000)):
        assert other._keep_fast(ticket_id) == decisions[ticket_id]
    rate = sum(decisions.values()) / len(decisions)
    assert 0.0 < rate <= 0.10  # the <=10% acceptance bound
    # A different seed samples a different subset.
    reseeded = TailSampler(TelemetryConfig(tail_sample_rate=0.05, tail_seed=1337))
    assert any(
        reseeded._keep_fast(i) != decisions[i] for i in range(2000)
    )


def test_sampler_traces_carry_per_attempt_attribution_and_exemplars():
    sampler = TailSampler(TelemetryConfig(tail_sample_rate=0.0))
    winner = _FakeAttempt("d0", dispatched=1.0, end=3.0, first_token=2.0)
    loser = _FakeAttempt("d1", dispatched=1.5, end=2.5, state="cancelled", hedge=True)
    ticket = _FakeTicket(42, [winner, loser], winner=winner, hedges=1)
    assert sampler.offer(ticket) == "hedged"
    trace = sampler.traces[-1]
    serves = [e for e in trace["events"] if e.get("cat") == "serve"]
    assert {(e["args"]["attempt"], e["args"]["device"]) for e in serves} == {
        (0, "d0"), (1, "d1"),
    }
    flow_ids = {e["id"] for e in trace["events"] if e["ph"] in ("s", "f")}
    assert flow_ids == {42000, 42001}  # per-attempt flow identity
    # The winner's TTFT (2.0 s) pinned an exemplar on its bucket.
    assert sampler.exemplars[2.5]["trace_id"] == 42
    assert sampler.exemplars[2.5]["value"] == pytest.approx(2.0)
    # The merged export is valid Chrome-trace JSON.
    chrome = json.loads(sampler.to_chrome_trace())
    assert any(e.get("ph") == "X" for e in chrome["traceEvents"])
    assert json.dumps(sampler.to_dict(), sort_keys=True)
