"""Tracing must be free when nobody is listening.

Every tracer call site in the serving path is guarded by
``if self.tracer.enabled:`` so that the default :data:`NULL_TRACER`
costs neither the call nor the eager ``%``-formatted span names.  These
tests pin that down two ways: an allocation regression (tracemalloc
sees zero blocks from the trace module on the untraced hot path) and a
fingerprint parity check (attaching a real tracer changes nothing
observable about the run).
"""

import tracemalloc

from repro.core import TZLLM
from repro.llm import TINYLLAMA
from repro.serve import ServeGateway
from repro.sim.trace import NULL_TRACER, NullTracer, Tracer


def _drive(gateway, n=8):
    """A small mixed workload exercising queue/serve/preempt/flow sites."""
    sim = gateway.sim
    done = []
    for i in range(n):
        priority = "background" if i % 3 == 0 else "interactive"
        done.append(
            gateway.submit(
                prompt_tokens=16 + 8 * (i % 4),
                output_tokens=2 + (i % 3),
                priority=priority,
                tenant="t%d" % (i % 2),
            )
        )
        sim.run(until=sim.now + 0.05)
    sim.run_until(sim.all_of([r.completion for r in done]))
    return done


def _fingerprint(gateway, requests):
    return [
        (
            r.request_id,
            r.state,
            r.attempts,
            r.preemptions,
            round(r.dispatched_at, 9),
            round(r.first_token_at, 9) if r.first_token_at is not None else None,
            round(r.finished_at, 9) if r.finished_at is not None else None,
            r.tokens_generated,
        )
        for r in requests
    ] + list(gateway.log)


def test_untraced_gateway_allocates_nothing_in_trace_module():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    gateway = ServeGateway(system)
    assert gateway.tracer is NULL_TRACER  # the default, shared singleton
    _drive(gateway)  # warm every code path first
    tracemalloc.start(1)
    try:
        _drive(gateway)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    trace_py = NullTracer.record.__code__.co_filename
    blocks = sum(
        stat.count
        for stat in snapshot.filter_traces(
            [tracemalloc.Filter(True, trace_py)]
        ).statistics("filename")
    )
    assert blocks == 0


def test_null_tracer_surface_is_allocation_free_singletons():
    handle = NULL_TRACER.span("cat", "name")
    assert handle is NULL_TRACER.span("other", "thing")  # shared handle
    handle.close()
    with NULL_TRACER.span("cat", "ctx"):
        pass
    NULL_TRACER.record("cat", "n", 0.0)
    NULL_TRACER.counter("c", 1.0)
    NULL_TRACER.instant("cat", "i")
    NULL_TRACER.flow("s", 1, "f", "lane")
    # Read-side collections are shared immutable empties, not fresh lists.
    assert NULL_TRACER.spans is NULL_TRACER.spans and NULL_TRACER.spans == ()
    assert NULL_TRACER.counters == () and NULL_TRACER.instants == ()
    assert not NULL_TRACER.enabled


def test_attaching_a_tracer_does_not_perturb_the_run():
    runs = []
    for tracer_factory in (lambda sim: None, Tracer):
        system = TZLLM(TINYLLAMA, cache_fraction=1.0)
        system.run_infer(8, 0)
        tracer = tracer_factory(system.sim)
        gateway = ServeGateway(system, tracer=tracer)
        runs.append(_fingerprint(gateway, _drive(gateway)))
    assert runs[0] == runs[1]
    # And the traced run actually collected something — the guards gate
    # cost, not coverage.
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    tracer = Tracer(system.sim)
    gateway = ServeGateway(system, tracer=tracer)
    _drive(gateway)
    assert tracer.spans and tracer.counters and tracer.flows
