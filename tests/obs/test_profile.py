"""Tests for the virtual-time profiler (repro.obs.profile)."""

import pytest

from repro.core.system import TZLLM
from repro.llm import TINYLLAMA
from repro.obs import Profiler
from repro.sim import BandwidthResource, ProcessLedger, Resource, Simulator
from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# lane accounting
# ----------------------------------------------------------------------
def test_lane_accounting_partitions_window():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        with tracer.span("compute", "op-a", lane="CPU"):
            yield sim.timeout(2.0)
        with tracer.span("wait", "queue npu", lane="CPU"):
            yield sim.timeout(1.0)
        with tracer.span("compute", "op-b", lane="NPU"):
            yield sim.timeout(3.0)

    sim.process(proc())
    sim.run()
    lanes = {b.lane: b for b in Profiler(tracer).lane_accounting()}
    cpu, npu = lanes["CPU"], lanes["NPU"]
    assert cpu.window == pytest.approx(6.0)
    assert cpu.busy == pytest.approx(2.0)
    assert cpu.wait == pytest.approx(1.0)
    assert cpu.idle == pytest.approx(3.0)
    assert npu.busy == pytest.approx(3.0)
    assert npu.wait == pytest.approx(0.0)
    for b in lanes.values():
        assert b.accounted == pytest.approx(1.0)


def test_lane_accounting_overlapping_spans_do_not_double_count():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        outer = tracer.span("compute", "outer", lane="CPU")
        yield sim.timeout(1.0)
        with tracer.span("compute", "inner", lane="CPU"):
            yield sim.timeout(1.0)
        outer.close()
        # A wait span overlapping the busy region counts only where the
        # lane is not already busy.
        tracer.record("wait", "late wait", start=1.5, lane="CPU")

    sim.process(proc())
    sim.run()
    (cpu,) = Profiler(tracer).lane_accounting()
    assert cpu.busy == pytest.approx(2.0)
    assert cpu.wait == pytest.approx(0.0)
    assert cpu.idle == pytest.approx(0.0)


# ----------------------------------------------------------------------
# collapsed stacks
# ----------------------------------------------------------------------
def test_collapsed_stacks_format_and_aggregation():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        for _ in range(3):
            with tracer.span("compute", "matmul q4", lane="NPU"):
                yield sim.timeout(0.5)

    sim.process(proc())
    sim.run()
    out = Profiler(tracer).collapsed_stacks()
    lines = out.splitlines()
    assert lines == ["NPU;compute;matmul_q4 1500000"]  # 1.5 s aggregated
    frame, _, count = lines[0].rpartition(" ")
    assert count.isdigit()
    assert frame.count(";") == 2


def test_collapsed_stacks_sanitizes_separators():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.record("a;b", "x y", start=0.0, lane="l")
    out = Profiler(tracer).collapsed_stacks()
    frame = out.split(" ")[0]
    assert frame == "l;a,b;x_y"


# ----------------------------------------------------------------------
# queueing report
# ----------------------------------------------------------------------
def test_queueing_report_semaphore_littles_law():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="npu")

    def worker():
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)

    for _ in range(4):
        sim.process(worker())
    sim.run()
    prof = Profiler(Tracer(sim), resources=[res], sim=sim)
    (row,) = prof.queueing_report()
    assert row.name == "npu"
    assert row.arrivals == 4
    assert row.completions == 4
    # Waits are 0,1,2,3 s -> mean 1.5; p99 interpolates between the two
    # top ranks (the repro.analysis.metrics.percentile definition).
    assert row.mean_wait == pytest.approx(1.5)
    assert row.p99_wait == pytest.approx(2.97)
    assert row.utilization == pytest.approx(1.0)
    # L = lambda * W must close to numerical precision.
    assert row.littles_law_residual < 1e-9


def test_queueing_report_pipe_stats():
    sim = Simulator()
    pipe = BandwidthResource(sim, bandwidth=100.0, name="flash")

    def xfer(tag):
        yield pipe.transfer(100.0, tag=tag)

    sim.process(xfer("model-a"))
    sim.process(xfer("model-b"))
    sim.run()
    prof = Profiler(Tracer(sim), resources=[pipe], sim=sim)
    (row,) = prof.queueing_report()
    assert row.kind == "pipe"
    assert row.arrivals == 2
    assert row.completions == 2
    assert row.utilization == pytest.approx(1.0)
    assert row.littles_law_residual < 1e-9
    tags = pipe.stats.tags
    assert set(tags) == {"model-a", "model-b"}
    assert tags["model-a"].bytes == pytest.approx(100.0)


# ----------------------------------------------------------------------
# on the real system: coverage + determinism (the acceptance bars)
# ----------------------------------------------------------------------
def _fig12_profile():
    system = TZLLM(TINYLLAMA, cache_fraction=0.2, trace=True)
    system.run_infer(8, 0)  # warm + establish cache
    record = system.run_infer(128, 4)
    prof = Profiler(system.tracer, sim=system.sim)
    prof.add_record(record)
    return prof, record


def test_profiler_accounts_lane_time_on_fig12_scenario():
    prof, _record = _fig12_profile()
    lanes = prof.lane_accounting()
    assert lanes, "no lanes traced"
    for breakdown in lanes:
        # >= 99% of each lane's virtual time attributed (here: exactly
        # 100% by construction; the bound guards float drift).
        assert breakdown.accounted >= 0.99
        assert breakdown.busy + breakdown.wait + breakdown.idle == pytest.approx(
            breakdown.window
        )


def test_profiler_reports_are_deterministic():
    prof_a, _ = _fig12_profile()
    prof_b, _ = _fig12_profile()
    assert prof_a.collapsed_stacks() == prof_b.collapsed_stacks()
    assert prof_a.render() == prof_b.render()


def test_decode_attribution_totals_cover_decode_steps():
    prof, record = _fig12_profile()
    (row,) = prof.decode_attribution()
    assert row["tokens"] == 4
    total = row["cpu"] + row["npu_compute"] + row["smc"] + row["sched_wait"]
    decode_time = sum(record.decode.step_times)
    assert total == pytest.approx(decode_time, rel=1e-6)
    # Every component is non-negative.
    for key in ("cpu", "npu_compute", "smc", "sched_wait"):
        assert row[key] >= 0.0


def test_process_ledger_in_profile_export():
    sim = Simulator()
    sim.ledger = ProcessLedger()

    def child():
        yield sim.timeout(1.0)

    def parent():
        yield sim.timeout(0.5)
        sim.process(child(), name="child")

    sim.process(parent(), name="parent")
    sim.run()
    prof = Profiler(Tracer(sim), ledger=sim.ledger, sim=sim)
    export = prof.to_dict()
    assert "processes" in export
    names = [name for name, _row in sim.ledger.rows()]
    assert "child" in names and "parent" in names
    assert "processes:" in prof.render()
