"""The secure-memory observatory (repro.obs.memory).

Covers the event-sourced MemoryTimeline on a real batching stack, the
derived ``mem_*`` telemetry series, the Chrome counter lane, pressure
rules, the flight-recorder memory postmortem (satellite of the same
PR), and the two contracts everything else leans on: zero allocations
with no timeline attached, and fingerprint parity when one is.
"""

import json
import tracemalloc

from repro.core import BatchConfig, TZLLM
from repro.llm import TINYLLAMA
from repro.obs import MemoryTimeline, instrument, memory_pressure_rules
from repro.obs.memory import _tenant_of
from repro.obs.telemetry import TelemetryCollector, TelemetryConfig, TimeSeriesStore
from repro.serve import GatewayConfig, ServeGateway


def make_stack(budget_blocks=None, **gateway_overrides):
    batch = BatchConfig(
        max_batch_size=2,
        block_tokens=16,
        **({} if budget_blocks is None else {"budget_blocks": budget_blocks})
    )
    system = TZLLM(TINYLLAMA, batch_config=batch)
    obs = instrument(system)
    gateway_overrides.setdefault("batching", True)
    gateway_overrides.setdefault("shedding", False)
    gateway = ServeGateway(system, GatewayConfig(**gateway_overrides))
    return system, obs, gateway


def drive(gateway, tenants=("a", "b", "a", "c")):
    done = [
        gateway.submit(32, 24, priority="batch", tenant=t) for t in tenants
    ]
    for request in done:
        gateway.sim.run_until(request.completion)
    return done


# ----------------------------------------------------------------------
# event sourcing and aggregates
# ----------------------------------------------------------------------
def test_timeline_records_regions_and_blocks_with_owners():
    system, obs, gateway = make_stack()
    timeline = MemoryTimeline(system.sim).attach(system)
    drive(gateway)
    export = timeline.to_dict()
    assert export["schema"] == "repro.obs.memory/1"
    assert export["recorded"] > 0 and export["dropped"] == 0
    kinds = {e["kind"] for e in export["events"]}
    assert kinds == {"region", "kv"}
    # Regions exist before attach (built with the stack), so the ops
    # seen live are the demand-driven resizes, not the initial configure.
    ops = {e["op"] for e in export["events"]}
    assert {"resize", "reserve", "alloc", "release"} <= ops
    # Owner attribution reached the block events: tenant/rNNN.
    owners = {e["owner"] for e in export["events"] if e["op"] == "alloc"}
    assert owners and all("/" in o for o in owners)
    assert {o.split("/")[0] for o in owners} == {"a", "b", "c"}
    # Events are time-ordered (the ring appends in sim order).
    ats = [e["at"] for e in export["events"]]
    assert ats == sorted(ats)


def test_timeline_integrates_stranded_and_tenant_byte_seconds():
    system, obs, gateway = make_stack()
    timeline = MemoryTimeline(system.sim).attach(system)
    drive(gateway)
    totals = timeline.to_dict()["totals"]
    # Everything drained: configured collapsed back to zero, but the
    # history integral kept what was stranded while regions were up.
    assert totals["configured_bytes"] == 0
    assert totals["stranded_byte_seconds"] > 0
    tenants = timeline.tenant_byte_seconds()
    assert set(tenants) == {"a", "b", "c"}
    assert all(v > 0 for v in tenants.values())


def test_pool_conservation_in_export():
    system, obs, gateway = make_stack()
    timeline = MemoryTimeline(system.sim).attach(system)
    drive(gateway)
    for pool in timeline.to_dict()["pools"].values():
        assert (
            pool["free_blocks"] + pool["active_blocks"] + pool["parked_blocks"]
            + pool["cached_blocks"]
            == pool["total_blocks"]
        )
        assert pool["allocs"] == pool["releases"]  # fully drained


def test_tenant_of_owner_parsing():
    assert _tenant_of("") == "-"
    assert _tenant_of("r17") == "-"
    assert _tenant_of("acme/r17") == "acme"


# ----------------------------------------------------------------------
# telemetry derivation
# ----------------------------------------------------------------------
def test_install_derives_mem_series_into_store():
    system, obs, gateway = make_stack()
    timeline = MemoryTimeline(system.sim).attach(system)
    store = TimeSeriesStore(TelemetryConfig())
    collector = TelemetryCollector(
        system.sim, obs.registry, store, TelemetryConfig()
    )
    timeline.install(collector)

    seen = {"stranded": 0.0}

    def probe():
        # Sample mid-run (pre_scrape runs before the gauges are read).
        seen["stranded"] = max(seen["stranded"], timeline.stranded_bytes)

    collector.pre_scrape.append(probe)
    requests = [gateway.submit(32, 24, priority="batch", tenant="a")]

    def scraper():
        for _ in range(40):
            yield system.sim.timeout(0.25)
            collector.scrape()

    system.sim.process(scraper())
    for request in requests:
        system.sim.run_until(request.completion)
    system.sim.run(until=system.sim.now + 10.0)
    assert collector.scrapes > 0
    assert store.latest("mem_secure_configured_bytes") is not None
    assert store.latest("mem_stranded_byte_seconds_total") > 0
    assert store.latest("mem_pool_occupancy", pool=TINYLLAMA.model_id) is not None
    assert store.latest("mem_tenant_byte_seconds_total", tenant="a") > 0
    # Stranding was visible live: activation scratch + block rounding
    # keep configured above live while the batch runs.
    assert seen["stranded"] >= 0


# ----------------------------------------------------------------------
# chrome counter lane
# ----------------------------------------------------------------------
def test_chrome_trace_memory_counter_lane():
    system, obs, gateway = make_stack()
    timeline = MemoryTimeline(system.sim).attach(system)
    drive(gateway)
    doc = json.loads(timeline.to_chrome_trace())
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    counters = [e for e in events if e["ph"] == "C"]
    assert {m["name"] for m in meta} == {"thread_name", "thread_sort_index"}
    assert counters and all(e["name"] == "secure-memory" for e in counters)
    assert all(e["tid"] == 90 for e in counters)
    ts = [e["ts"] for e in counters]
    assert ts == sorted(ts)
    keys = {"configured", "kv_live", "kv_parked", "kv_reserved", "shared",
            "stranded"}
    assert all(set(e["args"]) == keys for e in counters)
    # The replayed lane agrees with the live aggregates at the end.
    final = counters[-1]["args"]
    assert final["configured"] == timeline.configured_bytes
    assert final["kv_live"] == timeline.kv_live_bytes


# ----------------------------------------------------------------------
# pressure rules + admission-block accounting
# ----------------------------------------------------------------------
def test_memory_pressure_rules_shape():
    rules = memory_pressure_rules(stranded_ratio=0.7, objective=0.9)
    assert [r.name for r in rules] == ["mem-stranded-ratio", "kv-admission-burn"]
    threshold, burn = rules
    assert threshold.metric == "mem_stranded_ratio"
    assert threshold.threshold == 0.7
    assert burn.total_metric == "serve_admitted_total"
    assert burn.bad_metric == "serve_kv_admission_blocked_total"


def test_kv_admission_block_counts_once_and_flags_request():
    # 6-block budget, 4 blocks per request: the second queues blocked.
    system, obs, gateway = make_stack(budget_blocks=6)
    requests = drive(gateway, tenants=("a", "b"))
    assert any(r.kv_blocked for r in requests)
    blocked = obs.registry.counter(
        "serve_kv_admission_blocked_total", ""
    ).value(model=TINYLLAMA.model_id)
    # Head-of-line dedup: one blocked head, many dispatch polls.
    assert blocked == 1
    sites = [e.site for e in obs.recorder.events if e.category == "memory"]
    assert "gateway.kv_admission_block" in sites


def test_failed_kv_blocked_request_gets_memory_postmortem():
    from repro.faults.plan import FaultPlan, FaultSpec

    system = TZLLM(
        TINYLLAMA,
        batch_config=BatchConfig(max_batch_size=2, block_tokens=16, budget_blocks=6),
        cache_fraction=0.0,
    )
    system.run_infer(8, 0)
    obs = instrument(system)
    timeline = MemoryTimeline(system.sim).attach(system)
    plan = FaultPlan(
        11, [FaultSpec(site="flash.read_error", probability=1.0)]
    )
    plan.injector(system.sim).arm(system)
    gateway = ServeGateway(
        system,
        GatewayConfig(batching=True, shedding=False, max_retries=1),
    )
    first = gateway.submit(32, 24, priority="batch", tenant="a")
    second = gateway.submit(32, 24, priority="batch", tenant="b")
    for request in (first, second):
        system.sim.run_until(request.completion)
    failed = [r for r in (first, second) if r.failed]
    assert failed  # every read faults, retries exhaust
    flagged = [r for r in failed if r.kv_blocked]
    assert flagged  # the queued head blocked while the first held blocks
    for request in flagged:
        assert request.postmortem_memory  # memory-category tail attached
        assert all(e.category == "memory" for e in request.postmortem_memory)
    # Non-KV-blocked failures carry only the generic postmortem.
    for request in failed:
        if not request.kv_blocked:
            assert request.postmortem_memory is None


# ----------------------------------------------------------------------
# cost contracts
# ----------------------------------------------------------------------
def test_unattached_stack_allocates_nothing_in_memory_module():
    system, obs, gateway = make_stack()
    drive(gateway)  # warm every code path first
    tracemalloc.start(1)
    try:
        drive(gateway)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    memory_py = MemoryTimeline.note_alloc.__code__.co_filename
    blocks = sum(
        stat.count
        for stat in snapshot.filter_traces(
            [tracemalloc.Filter(True, memory_py)]
        ).statistics("filename")
    )
    assert blocks == 0


def _fingerprint(gateway, requests):
    return [
        (
            r.request_id,
            r.state,
            r.attempts,
            round(r.dispatched_at, 9),
            round(r.finished_at, 9) if r.finished_at is not None else None,
            r.tokens_generated,
        )
        for r in requests
    ] + list(gateway.log)


def test_attaching_timeline_does_not_perturb_the_run():
    runs = []
    for with_timeline in (False, True):
        system, obs, gateway = make_stack()
        if with_timeline:
            timeline = MemoryTimeline(system.sim).attach(system)
        runs.append(_fingerprint(gateway, drive(gateway)))
    assert runs[0] == runs[1]
    assert timeline.recorded > 0  # the guards gate cost, not coverage


def test_detach_unwires_every_hook():
    system, obs, gateway = make_stack()
    timeline = MemoryTimeline(system.sim).attach(system)
    drive(gateway)
    recorded = timeline.recorded
    timeline.detach()
    assert system.stack.board.tzasc.timeline is None
    assert system.ta.batch_engine.pool.timeline is None
    drive(gateway)
    assert timeline.recorded == recorded  # silent after detach
