"""Tests for the critical-path report over a trace."""

import json

import pytest

from repro.analysis import critical_path
from repro.sim import Simulator, Span
from repro.sim.trace import NULL_TRACER, Tracer


def _tracer_with(spans):
    tracer = Tracer(Simulator())
    tracer.spans.extend(spans)
    return tracer


def test_overlap_is_merged_per_lane():
    report = critical_path(
        _tracer_with(
            [
                Span("load", "g0", 0.0, 1.0, "I/O"),
                Span("load", "g1", 0.5, 2.0, "I/O"),  # overlaps g0
                Span("compute", "m0", 1.0, 1.5, "NPU"),
            ]
        )
    )
    io = next(u for u in report.lanes if u.lane == "I/O")
    npu = next(u for u in report.lanes if u.lane == "NPU")
    # Merged [0, 2), not 1.0 + 1.5 summed.
    assert io.busy == pytest.approx(2.0)
    assert io.bubbles == pytest.approx(0.0)
    assert npu.busy == pytest.approx(0.5)
    assert npu.bubbles == pytest.approx(1.5)
    # Category busy *does* sum raw durations.
    assert report.category_busy["load"] == pytest.approx(2.5)
    assert report.critical_lane == "I/O"
    assert report.window == pytest.approx(2.0)


def test_disjoint_spans_leave_bubbles():
    report = critical_path(
        _tracer_with(
            [
                Span("load", "a", 0.0, 1.0, "I/O"),
                Span("load", "b", 3.0, 4.0, "I/O"),
            ]
        )
    )
    (io,) = report.lanes
    assert io.busy == pytest.approx(2.0)
    assert io.bubbles == pytest.approx(2.0)
    assert io.utilization == pytest.approx(0.5)


def test_empty_trace_yields_empty_report():
    report = critical_path(NULL_TRACER)
    assert report.window == 0.0
    assert report.lanes == [] and report.category_busy == {}
    assert report.to_dict()["critical_lane"] is None
    assert "window 0.000000" in report.render()


def test_report_exports_are_json_stable():
    report = critical_path(
        _tracer_with([Span("compute", "m", 0.0, 1.0, "NPU")])
    )
    doc = json.dumps(report.to_dict(), sort_keys=True)
    assert json.loads(doc)["critical_lane"] == "NPU"
    assert "critical lane: NPU" in report.render()


def test_end_to_end_report_matches_tracer_totals():
    from repro import TINYLLAMA, TZLLM

    system = TZLLM(TINYLLAMA, trace=True)
    system.run_infer(8, 0)
    system.run_infer(64, 0)
    report = critical_path(system.tracer)
    for category in ("alloc", "load", "decrypt", "compute"):
        assert report.category_busy[category] == pytest.approx(
            system.tracer.total_time(category)
        )
    lanes = {u.lane for u in report.lanes}
    assert {"CPU", "I/O engine", "NPU"} <= lanes
    for usage in report.lanes:
        assert 0.0 <= usage.utilization <= 1.0
        assert usage.busy + usage.bubbles == pytest.approx(report.window)
