"""End-to-end instrumentation: one registry spans every subsystem, and
flow events link the gateway to the TEE lane that served each request."""

import json

import pytest

from repro import TINYLLAMA, TZLLM
from repro.core.multi import TZLLMMulti
from repro.obs import Observability, instrument
from repro.serve import GatewayConfig, ServeGateway


def test_instrument_wires_every_attach_point():
    system = TZLLM(TINYLLAMA)
    obs = instrument(system)
    stack = system.stack
    for component in (
        stack.kernel.fs.flash,
        stack.board.tzasc,
        stack.board.monitor,
        stack.tz_driver,
        stack.ree_npu,
        stack.tee_npu,
        system.ta,
    ):
        assert component.metrics is obs.registry
        assert component.recorder is obs.recorder
    for region in stack.kernel.cma_regions.values():
        assert region.metrics is obs.registry
    assert stack.observability is obs
    assert system.observability is obs


def test_detach_restores_null_attach_points():
    system = TZLLM(TINYLLAMA)
    obs = instrument(system)
    obs.detach(system)
    assert system.stack.kernel.fs.flash.metrics is None
    assert system.stack.board.monitor.recorder is None
    assert system.ta.metrics is None


def test_single_system_run_exports_cross_layer_metrics():
    system = TZLLM(TINYLLAMA)
    obs = instrument(system)
    system.run_infer(64, 0)
    reg = obs.registry
    assert reg.counter("flash_reads_total").value() > 0
    assert reg.counter("smc_calls_total").value(func="ree.cma_alloc") > 0
    assert reg.counter("pipeline_loaded_bytes_total").value() > 0
    assert reg.counter("tee_npu_jobs_total").value(outcome="completed") > 0
    cma = reg.counter("cma_allocations_total")
    assert sum(v for _k, v in cma.samples()) > 0
    # SMC latency histogram observed something.
    assert reg.get("smc_latency_seconds").value(func="ree.cma_alloc") > 0


def test_multi_tenant_serving_covers_five_subsystems_and_links_flows():
    """The PR's acceptance run: TZLLMMulti + gateway under one registry."""
    system = TZLLMMulti([TINYLLAMA], cache_fraction=1.0, trace=True)
    obs = instrument(system)
    system.run_infer(TINYLLAMA.model_id, 8, 0)  # cold start
    gateway = ServeGateway(system, GatewayConfig(shedding=False))
    assert gateway.registry is obs.registry
    assert gateway.recorder is obs.recorder
    for request_id in range(3):
        gateway.submit_blocking(
            32, 4, model_id=TINYLLAMA.model_id, tenant="t%d" % request_id
        )

    text = obs.registry.render()
    prefixes = ("flash_", "cma_", "smc_", "tee_npu_", "serve_")
    for prefix in prefixes:
        samples = [
            line
            for line in text.splitlines()
            if line.startswith(prefix) and not line.startswith("#")
        ]
        assert samples, "no %s* samples in the unified export" % prefix

    # Flow legs: s (gateway admission) -> t (TEE CPU/NPU lanes) ->
    # f (gateway completion), all bound by one flow id per request.
    tracer = system.tracer
    by_id = {}
    for flow in tracer.flows:
        by_id.setdefault(flow.flow_id, []).append(flow)
    served = [fid for fid, legs in by_id.items() if {l.phase for l in legs} == {"s", "t", "f"}]
    assert len(served) >= 3
    for fid in served:
        legs = by_id[fid]
        assert all(l.name == legs[0].name for l in legs)
        starts = [l for l in legs if l.phase == "s"]
        steps = [l for l in legs if l.phase == "t"]
        finishes = [l for l in legs if l.phase == "f"]
        assert [l.lane for l in starts] == ["gateway"]
        assert [l.lane for l in finishes] == ["gateway"]
        # The step legs land in the TEE: prefill start on the CPU lane
        # and the first secure NPU job on the NPU lane.
        assert {l.lane for l in steps} == {"CPU", "NPU"}
        assert starts[0].at <= min(s.at for s in steps)
        assert finishes[0].at >= max(s.at for s in steps)

    # The export embeds the flow legs with valid Chrome phases.
    doc = json.loads(tracer.to_chrome_trace())
    flow_events = [e for e in doc["traceEvents"] if e["ph"] in ("s", "t", "f")]
    assert len(flow_events) == len(tracer.flows)
    for event in flow_events:
        assert set(("pid", "tid", "id", "ts", "name", "cat")) <= set(event)
    assert all(e["bp"] == "e" for e in flow_events if e["ph"] == "f")


def test_accountant_reads_through_to_the_shared_registry():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    obs = instrument(system)
    system.run_infer(8, 0)
    gateway = ServeGateway(system, GatewayConfig(shedding=False))
    gateway.submit_blocking(16, 2)
    reg = obs.registry
    assert reg.counter("serve_admitted_total").value(**{"class": "interactive"}) == 1
    assert reg.counter("serve_completed_total").value(**{"class": "interactive"}) == 1
    # The accountant's export and the registry agree by construction.
    stats = gateway.accountant.to_dict()["classes"]["interactive"]
    assert stats["completed"] == 1


def test_observability_accepts_shared_registry():
    system_a = TZLLM(TINYLLAMA)
    obs_a = instrument(system_a)
    system_b = TZLLM(TINYLLAMA)
    obs_b = Observability(system_b.sim, registry=obs_a.registry).attach(system_b)
    assert obs_b.registry is obs_a.registry
    system_a.run_infer(8, 0)
    system_b.run_infer(8, 0)
    # Both systems landed on one namespace.
    assert obs_a.registry.counter("flash_reads_total").value() > 0
