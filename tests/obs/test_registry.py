"""Tests for the labeled metrics registry and its exports."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_inc_and_labels():
    reg = MetricsRegistry()
    c = reg.counter("smc_calls_total", "SMC calls by function.")
    c.inc(func="ree.cma_alloc")
    c.inc(2, func="ree.cma_alloc")
    c.inc(func="ree.npu_submit")
    assert c.value(func="ree.cma_alloc") == 3
    assert c.value(func="ree.npu_submit") == 1
    assert c.value(func="never") == 0.0


def test_counter_rejects_negative():
    c = MetricsRegistry().counter("x_total")
    with pytest.raises(ConfigurationError):
        c.inc(-1)


def test_get_or_create_is_idempotent_and_type_safe():
    reg = MetricsRegistry()
    a = reg.counter("events_total")
    b = reg.counter("events_total")
    assert a is b
    with pytest.raises(ConfigurationError):
        reg.gauge("events_total")
    with pytest.raises(ConfigurationError):
        reg.histogram("events_total")


def test_invalid_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        reg.counter("bad name")
    with pytest.raises(ConfigurationError):
        reg.counter("")
    c = reg.counter("ok_total")
    with pytest.raises(ConfigurationError):
        c.inc(**{"0bad": "x"})


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("queue_depth")
    g.set(5, **{"class": "interactive"})
    g.dec(2, **{"class": "interactive"})
    g.inc(1, **{"class": "interactive"})
    assert g.value(**{"class": "interactive"}) == 4


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 100.0):
        h.observe(v)
    assert h.value() == 5
    assert h.sum() == pytest.approx(106.05)
    text = reg.render()
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 3' in text
    assert 'lat_seconds_bucket{le="10"} 4' in text
    assert 'lat_seconds_bucket{le="+Inf"} 5' in text
    assert "lat_seconds_count 5" in text
    assert "lat_seconds_sum" in text


def test_histogram_needs_buckets():
    with pytest.raises(ConfigurationError):
        MetricsRegistry().histogram("h", buckets=())


def test_labeled_rebuilds_reason_dicts():
    c = MetricsRegistry().counter("rejected_total")
    c.inc(2, reason="queue-full", **{"class": "batch"})
    c.inc(1, reason="deadline", **{"class": "batch"})
    assert c.labeled("reason") == {"queue-full": 2.0, "deadline": 1.0}


def test_render_is_deterministic_and_schema_stable():
    def build():
        reg = MetricsRegistry()
        reg.counter("b_total", "Bees.").inc(3, kind="b")
        reg.counter("a_total", "Ayes.").inc(kind="z")
        reg.counter("a_total").inc(kind="a")
        reg.gauge("untouched_gauge", "Never set.")
        return reg

    a, b = build().render(), build().render()
    assert a == b
    # Instruments and label sets come out sorted; untouched instruments
    # still expose their schema header.
    assert a.index("# TYPE a_total") < a.index("# TYPE b_total")
    assert a.index('a_total{kind="a"}') < a.index('a_total{kind="z"}')
    assert "# TYPE untouched_gauge gauge" in a


def test_to_dict_round_trips_and_is_stable():
    reg = MetricsRegistry()
    reg.counter("events_total", "Events.").inc(7, site="flash")
    reg.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
    doc = json.dumps(reg.to_dict(), sort_keys=True)
    assert doc == json.dumps(reg.to_dict(), sort_keys=True)
    parsed = json.loads(doc)
    assert parsed["events_total"]["kind"] == "counter"
    assert parsed["events_total"]["series"] == [
        {"labels": {"site": "flash"}, "value": 7.0}
    ]
    assert parsed["lat_seconds"]["series"][0]["count"] == 1


def test_direct_instrument_classes_validate_names():
    with pytest.raises(ConfigurationError):
        Counter("bad name")
    with pytest.raises(ConfigurationError):
        Gauge("-")
    with pytest.raises(ConfigurationError):
        Histogram("nope!", buckets=(1.0,))


def test_export_stable_under_label_insertion_order():
    # Two registries fed the same series with labels passed in different
    # keyword order and touched in different sequence must export
    # byte-identical text and JSON.
    import json

    a = MetricsRegistry()
    a.counter("req_total").inc(2, model="tiny", lane="tee")
    a.counter("req_total").inc(1, lane="ree", model="big")
    a.gauge("depth").set(3, **{"class": "interactive"})
    a.histogram("lat").observe(0.02, model="tiny", op="decode")

    b = MetricsRegistry()
    b.histogram("lat").observe(0.02, op="decode", model="tiny")
    b.gauge("depth").set(3, **{"class": "interactive"})
    b.counter("req_total").inc(1, model="big", lane="ree")
    b.counter("req_total").inc(2, lane="tee", model="tiny")

    assert a.render() == b.render()
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )
