"""Tests for the bounded flight recorder."""

import json

from repro.obs import FlightRecorder
from repro.sim import Simulator


def _recorder(capacity=4):
    sim = Simulator()
    return sim, FlightRecorder(sim, capacity=capacity)


def test_events_are_stamped_with_sim_time():
    sim, rec = _recorder()

    def proc():
        rec.record("fault", "flash.read_error", "injected", blob="m.gguf")
        yield sim.timeout(1.5)
        rec.record("retry", "pipeline.load", attempt=2)

    sim.run_until(sim.process(proc()))
    a, b = rec.events
    assert a.at == 0.0 and a.site == "flash.read_error"
    assert b.at == 1.5 and b.category == "retry"
    assert dict(a.data) == {"blob": "m.gguf"}


def test_ring_drops_oldest_and_counts_drops():
    _sim, rec = _recorder(capacity=4)
    for i in range(10):
        rec.record("x", "site%d" % i)
    assert rec.total == 10
    assert rec.dropped == 6
    assert [e.site for e in rec.events] == ["site6", "site7", "site8", "site9"]


def test_tail_returns_last_n_oldest_first():
    _sim, rec = _recorder(capacity=8)
    for i in range(5):
        rec.record("x", "s%d" % i)
    assert [e.site for e in rec.tail(2)] == ["s3", "s4"]
    assert rec.tail(0) == []
    assert len(rec.tail(100)) == 5


def test_render_and_to_dict():
    _sim, rec = _recorder()
    rec.record("fault", "cma.migration_fail", "pinned", frame=7, attempt=1)
    text = rec.render()
    assert "flight recorder: 1 events (0 dropped)" in text
    assert "cma.migration_fail" in text and "frame=7" in text
    doc = json.dumps(rec.to_dict(), sort_keys=True)
    parsed = json.loads(doc)
    assert parsed["total"] == 1
    assert parsed["events"][0]["data"] == {"frame": "7", "attempt": "1"}
