"""Tests for the declarative alert engine (repro.obs.alerts)."""

import pytest

from repro import TINYLLAMA, TZLLM
from repro.errors import ConfigurationError, StorageError
from repro.faults import FaultPlan, FaultSpec
from repro.llm import container_path
from repro.obs import AlertEngine, BurnRateRule, MetricsRegistry, ThresholdRule, instrument
from repro.serve import ServeGateway
from repro.sim import Simulator
from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# rule validation
# ----------------------------------------------------------------------
def test_threshold_rule_rejects_unknown_op():
    with pytest.raises(ConfigurationError):
        ThresholdRule("bad", "m", "~", 1.0)


def test_burn_rate_rule_needs_exactly_one_numerator():
    with pytest.raises(ConfigurationError):
        BurnRateRule("bad", total_metric="t")
    with pytest.raises(ConfigurationError):
        BurnRateRule("bad", total_metric="t", good_metric="g", bad_metric="b")
    with pytest.raises(ConfigurationError):
        BurnRateRule("bad", total_metric="t", good_metric="g", objective=1.0)
    with pytest.raises(ConfigurationError):
        BurnRateRule(
            "bad", total_metric="t", good_metric="g", long_window=1.0, short_window=2.0
        )


def test_duplicate_rule_names_rejected():
    sim = Simulator()
    reg = MetricsRegistry()
    rule = ThresholdRule("dup", "m", ">", 1.0)
    with pytest.raises(ConfigurationError):
        AlertEngine(sim, reg, [rule, rule])


# ----------------------------------------------------------------------
# threshold rules
# ----------------------------------------------------------------------
def test_threshold_fires_after_for_duration_and_resolves():
    sim = Simulator()
    reg = MetricsRegistry()
    depth = reg.gauge("queue_depth")
    engine = AlertEngine(
        sim,
        reg,
        [ThresholdRule("deep-queue", "queue_depth", ">", 10.0, for_duration=2.0)],
        interval=1.0,
    )

    def driver():
        depth.set(20)
        yield sim.timeout(5.0)
        depth.set(3)
        yield sim.timeout(3.0)

    sim.process(driver())
    engine.start(until=8.0)
    sim.run()
    states = [(t.at, t.state) for t in engine.transitions]
    # Condition true from t=0; for_duration=2 means the tick at t>=2
    # fires; the driver drops the gauge right before the t=5 tick, which
    # resolves it.
    assert states == [(3.0, "firing"), (5.0, "resolved")]
    assert engine.firing() == []


def test_threshold_for_duration_resets_on_recovery():
    sim = Simulator()
    reg = MetricsRegistry()
    depth = reg.gauge("queue_depth")
    engine = AlertEngine(
        sim,
        reg,
        [ThresholdRule("flappy", "queue_depth", ">=", 5.0, for_duration=3.0)],
        interval=1.0,
    )

    def driver():
        # Blips shorter than for_duration never fire.
        for _ in range(3):
            depth.set(9)
            yield sim.timeout(1.5)
            depth.set(0)
            yield sim.timeout(1.5)

    sim.process(driver())
    engine.start(until=10.0)
    sim.run()
    assert engine.transitions == []


# ----------------------------------------------------------------------
# burn-rate rules
# ----------------------------------------------------------------------
def _burn_engine(sim, reg, **overrides):
    kwargs = dict(
        total_metric="requests_total",
        bad_metric="errors_total",
        objective=0.999,
        long_window=4.0,
        short_window=1.0,
        burn_factor=14.4,
    )
    kwargs.update(overrides)
    return AlertEngine(sim, reg, [BurnRateRule("slo-burn", **kwargs)], interval=0.5)


def test_burn_rate_fires_on_both_windows_and_resolves_fast():
    sim = Simulator()
    reg = MetricsRegistry()
    total = reg.counter("requests_total")
    errors = reg.counter("errors_total")
    engine = _burn_engine(sim, reg)

    def driver():
        while sim.now < 30.0:
            total.inc()
            if 10.0 <= sim.now < 20.0:
                errors.inc()
            yield sim.timeout(0.25)

    sim.process(driver())
    engine.start(until=30.0)
    sim.run()
    states = [t.state for t in engine.transitions]
    assert states == ["firing", "resolved"]
    fired, resolved = engine.transitions
    # Fires shortly after the error window opens...
    assert 10.0 < fired.at < 12.0
    assert fired.value >= 14.4
    # ...and the short window resolves it quickly after recovery.
    assert 20.0 < resolved.at < 22.0


def test_burn_rate_good_metric_form_matches_bad_metric_form():
    sim = Simulator()
    reg = MetricsRegistry()
    total = reg.counter("requests_total")
    good = reg.counter("good_total")
    engine = _burn_engine(
        sim, reg, bad_metric=None, good_metric="good_total"
    )

    def driver():
        while sim.now < 30.0:
            total.inc()
            if not (10.0 <= sim.now < 20.0):
                good.inc()
            yield sim.timeout(0.25)

    sim.process(driver())
    engine.start(until=30.0)
    sim.run()
    assert [t.state for t in engine.transitions] == ["firing", "resolved"]


def test_quiet_series_never_fires():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.counter("requests_total")
    reg.counter("errors_total")
    engine = _burn_engine(sim, reg)
    engine.start(until=10.0)
    sim.run()
    assert engine.transitions == []
    assert engine.ticks == 20


# ----------------------------------------------------------------------
# seeded chaos end to end: fault window -> alert fires -> clears,
# visible in the flight recorder and the Chrome trace.
# ----------------------------------------------------------------------
def _chaos_run(seed):
    system = TZLLM(TINYLLAMA)
    obs = instrument(system)
    tracer = Tracer(system.sim)
    plan = FaultPlan(
        seed, [FaultSpec("flash.read_error", probability=1.0, window=(10.0, 20.0))]
    )
    plan.injector(system.sim).arm(system)
    flash = system.stack.kernel.fs.flash
    # The encrypted fs namespaces blobs ("fs:<path>"); read the one
    # provisioned model container directly off the device.
    (blob,) = [n for n in flash._blobs if container_path(TINYLLAMA.model_id) in n]
    engine = AlertEngine(
        system.sim,
        obs.registry,
        [
            BurnRateRule(
                "flash-slo-burn",
                total_metric="flash_reads_total",
                bad_metric="flash_read_errors_total",
                objective=0.999,
                long_window=4.0,
                short_window=1.0,
            )
        ],
        recorder=obs.recorder,
        tracer=tracer,
        interval=0.5,
    )

    def reader():
        while system.sim.now < 30.0:
            try:
                yield from flash.read(blob, 0, 4096)
            except StorageError:
                pass
            yield system.sim.timeout(0.25)

    system.sim.process(reader())
    engine.start(until=30.0)
    system.sim.run()
    return engine, obs, tracer


def test_chaos_window_fires_and_clears_burn_rate_alert():
    engine, obs, tracer = _chaos_run(seed=7)
    assert [t.state for t in engine.transitions] == ["firing", "resolved"]
    fired, resolved = engine.transitions
    assert 10.0 < fired.at < 13.0
    assert 20.0 < resolved.at < 22.0
    # Both transitions landed in the flight recorder...
    alert_events = [e for e in obs.recorder.events if e.category == "alert"]
    assert [e.message for e in alert_events] == ["firing", "resolved"]
    assert all(e.site == "alert.flash-slo-burn" for e in alert_events)
    # ...next to the faults that caused them.
    fault_sites = {e.site for e in obs.recorder.events if e.category == "fault"}
    assert "flash.read_error" in fault_sites
    # And as instants on the alerts lane of the trace.
    assert [i.name for i in tracer.instants if i.lane == "alerts"] == [
        "flash-slo-burn firing",
        "flash-slo-burn resolved",
    ]


def test_chaos_alert_timeline_is_deterministic():
    a, _, _ = _chaos_run(seed=7)
    b, _, _ = _chaos_run(seed=7)
    assert [(t.at, t.name, t.state) for t in a.transitions] == [
        (t.at, t.name, t.state) for t in b.transitions
    ]


# ----------------------------------------------------------------------
# gateway health snapshot
# ----------------------------------------------------------------------
def test_gateway_health_reports_breakers_queues_and_alerts():
    system = TZLLM(TINYLLAMA)
    obs = instrument(system)
    system.run_infer(8, 0)
    gateway = ServeGateway(system)
    engine = AlertEngine(
        system.sim,
        obs.registry,
        [ThresholdRule("always", "serve_completed_total", ">=", 0.0)],
        gateway=gateway,
    )
    health = gateway.health()
    model_id = TINYLLAMA.model_id
    assert health["lanes"][model_id]["breaker"] == "closed"
    assert health["lanes"][model_id]["queue_depth"] == 0
    assert health["queue_depth"] == 0
    assert health["alerts_firing"] == []
    assert health["healthy"] is True
    # Once the (vacuous) rule fires, health reflects it.
    engine.tick()
    health = gateway.health()
    assert health["alerts_firing"] == ["always"]
    assert health["healthy"] is False
