"""Tests for prompt, NN-app, Geekbench, and stress workloads."""

import pytest

from repro.config import GiB, MiB, RK3588
from repro.errors import ConfigurationError
from repro.hw import AddrRange
from repro.ree.s2pt import S2PTState
from repro.stack import build_stack
from repro.workloads import (
    BENCHMARKS,
    GEEKBENCH_SUITE,
    MemoryStress,
    MOBILENET_V1,
    NNAppRunner,
    YOLOV5S,
    benchmark_names,
    generate_prompts,
    run_suite,
)


# ---------------------------------------------------------------------------
# prompts
# ---------------------------------------------------------------------------
def test_benchmarks_present():
    assert benchmark_names() == ["droidtask", "personachat", "ultrachat"]


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_prompt_lengths_within_spec(name):
    spec = BENCHMARKS[name]
    prompts = generate_prompts(name, 50)
    assert len(prompts) == 50
    for prompt in prompts:
        assert spec.min_tokens <= prompt.tokens <= spec.max_tokens
        # Text has (tokens - 1) words: the tokenizer adds BOS.
        assert len(prompt.text.split()) == prompt.tokens - 1


def test_prompts_deterministic_per_seed():
    a = generate_prompts("ultrachat", 10, seed=7)
    b = generate_prompts("ultrachat", 10, seed=7)
    c = generate_prompts("ultrachat", 10, seed=8)
    assert [p.tokens for p in a] == [p.tokens for p in b]
    assert [p.tokens for p in a] != [p.tokens for p in c]


def test_benchmark_length_ordering():
    """UltraChat is short, DroidTask is long (the Fig. 10 explanation)."""
    means = {
        name: sum(p.tokens for p in generate_prompts(name, 100)) / 100
        for name in BENCHMARKS
    }
    assert means["ultrachat"] < means["personachat"] < means["droidtask"]


def test_unknown_benchmark_rejected():
    with pytest.raises(ConfigurationError):
        generate_prompts("mmlu", 1)
    with pytest.raises(ConfigurationError):
        generate_prompts("ultrachat", 0)


def test_prompt_tokenizes_to_declared_length():
    from repro.llm import TINYLLAMA, Tokenizer

    tok = Tokenizer(TINYLLAMA.model_id, TINYLLAMA.vocab)
    for prompt in generate_prompts("personachat", 5):
        assert tok.count(prompt.text) == prompt.tokens


# ---------------------------------------------------------------------------
# NN apps
# ---------------------------------------------------------------------------
def test_nn_app_throughput_exclusive():
    stack = build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)
    runner = NNAppRunner(
        stack.sim, stack.spec, stack.ree_npu, MOBILENET_V1, AddrRange(0, 4096)
    )
    proc = stack.sim.process(runner.run_for(1.0))
    stack.sim.run_until(proc)
    # Per frame: cpu 0.5 ms + launch 1 ms + ~1.5 ms compute -> ~300/s.
    assert 150 < runner.throughput < 500
    assert runner.completed > 0


def test_yolo_slower_than_mobilenet():
    assert YOLOV5S.job_duration(RK3588) > MOBILENET_V1.job_duration(RK3588)


def test_two_apps_sharing_npu_slow_down():
    stack = build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)
    a = NNAppRunner(stack.sim, stack.spec, stack.ree_npu, MOBILENET_V1, AddrRange(0, 4096))
    b = NNAppRunner(stack.sim, stack.spec, stack.ree_npu, MOBILENET_V1, AddrRange(4096, 4096))
    pa = stack.sim.process(a.run_for(1.0))
    pb = stack.sim.process(b.run_for(1.0))
    stack.sim.run_until(pa)
    stack.sim.run_until(pb)
    solo_stack = build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)
    solo = NNAppRunner(
        solo_stack.sim, solo_stack.spec, solo_stack.ree_npu, MOBILENET_V1, AddrRange(0, 4096)
    )
    proc = solo_stack.sim.process(solo.run_for(1.0))
    solo_stack.sim.run_until(proc)
    assert a.throughput < solo.throughput
    assert b.throughput < solo.throughput


# ---------------------------------------------------------------------------
# Geekbench
# ---------------------------------------------------------------------------
def test_geekbench_s2pt_overheads_match_paper_band():
    baseline = run_suite(RK3588, S2PTState(enabled=False))
    with_s2pt = run_suite(RK3588, S2PTState(enabled=True, fragmented=True))
    overheads = [
        (baseline[app.name] / with_s2pt[app.name] - 1.0) * 100
        for app in GEEKBENCH_SUITE
    ]
    assert max(overheads) == pytest.approx(9.8, abs=0.5)
    assert 1.0 < sum(overheads) / len(overheads) < 3.5  # paper avg 2.0%


def test_geekbench_migration_slowdown_uses_real_records():
    from repro.config import PAGE_SIZE

    stack = build_stack(
        spec=RK3588.with_memory(256 * PAGE_SIZE),
        granule=PAGE_SIZE,
        os_footprint=0,
        cma_regions={"params": 64 * PAGE_SIZE},
    )
    kernel = stack.kernel
    region = kernel.cma_regions["params"]
    filler = kernel.map_anonymous(150 * PAGE_SIZE)
    victim = kernel.map_anonymous(64 * PAGE_SIZE)
    kernel.free(filler)
    start = min(f for f in victim.frames if f >= region.start_frame)
    count = sum(1 for f in victim.frames if f >= region.start_frame)
    proc = stack.sim.process(region.allocate_range(start, count))
    stack.sim.run_until(proc)
    assert region.total_migrated_bytes > 0
    scores = run_suite(
        RK3588,
        S2PTState(enabled=False),
        regions=[region],
        window_start=0.0,
        window_end=stack.sim.now,
    )
    baseline = run_suite(RK3588, S2PTState(enabled=False))
    assert all(scores[k] < baseline[k] for k in scores)


# ---------------------------------------------------------------------------
# stress
# ---------------------------------------------------------------------------
def test_stress_spills_into_cma_and_survives_migration():
    from repro.config import PAGE_SIZE

    stack = build_stack(
        spec=RK3588.with_memory(256 * PAGE_SIZE),
        granule=PAGE_SIZE,
        os_footprint=0,
        cma_regions={"params": 64 * PAGE_SIZE},
    )
    stress = MemoryStress(stack.kernel, 220 * PAGE_SIZE, headroom=0)
    stress.start()
    assert stress.frames_in_cma() > 0
    region = stack.kernel.cma_regions["params"]
    proc = stack.sim.process(
        region.allocate_range(region.start_frame, 16, threads=1)
    )
    stack.sim.run_until(proc)
    # Some pages migrated or were reclaimed; survivors keep their data.
    checked = stress.verify_surviving_pages()
    assert checked > 0
    stress.stop()


def test_stress_double_start_rejected():
    stack = build_stack(spec=RK3588.with_memory(64 * MiB), granule=MiB, os_footprint=0)
    stress = MemoryStress(stack.kernel, MiB)
    stress.start()
    with pytest.raises(ConfigurationError):
        stress.start()
    stress.stop()
    stress.stop()  # idempotent
