"""Tests for the fleet-scale session trace generator."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import FleetTenantSpec, generate_fleet_trace


def _spec(name, rate=120.0, **kwargs):
    return FleetTenantSpec(
        name=name,
        model_id="m0",
        priority="interactive",
        sessions_per_hour=rate,
        **kwargs,
    )


def test_sessions_have_consecutive_turns_and_growing_context():
    trace = generate_fleet_trace(3600.0, [_spec("chat", mean_turns=5.0)], seed=1)
    sessions = {}
    for r in trace:
        sessions.setdefault(r.session_id, []).append(r)
    assert any(len(turns) > 1 for turns in sessions.values())
    for turns in sessions.values():
        turns.sort(key=lambda r: r.turn)
        assert [r.turn for r in turns] == list(range(1, len(turns) + 1))
        times = [r.at for r in turns]
        assert times == sorted(times)
        assert turns[0].context_tokens == 0
        for prev, cur in zip(turns, turns[1:]):
            # Full stickiness: the next turn replays everything said so far.
            assert cur.context_tokens == (
                prev.context_tokens + prev.new_tokens + prev.output_tokens
            )


def test_prompt_tokens_decompose():
    trace = generate_fleet_trace(
        600.0, [_spec("chat", prefix_tokens=64, prefix_pool=2)], seed=2
    )
    assert trace
    for r in trace:
        assert r.prompt_tokens == r.prefix_tokens + r.context_tokens + r.new_tokens
        assert r.prefix_tokens == 64
        assert r.prefix_id in ("chat/p0", "chat/p1")


def test_zero_stickiness_drops_context():
    trace = generate_fleet_trace(
        3600.0, [_spec("chat", stickiness=0.0, mean_turns=6.0)], seed=3
    )
    assert all(r.context_tokens == 0 for r in trace)


def test_deterministic_and_tenant_order_independent():
    specs = [_spec("a"), _spec("b", rate=40.0), _spec("muted", rate=0.0)]
    forward = generate_fleet_trace(1800.0, specs, seed=4)
    again = generate_fleet_trace(1800.0, specs, seed=4)
    backward = generate_fleet_trace(1800.0, list(reversed(specs)), seed=4)
    assert forward == again == backward
    assert all(r.tenant != "muted" for r in forward)
    assert forward != generate_fleet_trace(1800.0, specs, seed=5)


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        generate_fleet_trace(0.0, [_spec("a")])
    with pytest.raises(ConfigurationError):
        generate_fleet_trace(10.0, [])
    with pytest.raises(ConfigurationError):
        generate_fleet_trace(10.0, [_spec("a"), _spec("a")])
    with pytest.raises(ConfigurationError):
        generate_fleet_trace(10.0, [_spec("a", rate=-1.0)])
    with pytest.raises(ConfigurationError):
        generate_fleet_trace(10.0, [_spec("a", mean_turns=0.5)])
    with pytest.raises(ConfigurationError):
        generate_fleet_trace(10.0, [_spec("a", stickiness=1.5)])
    with pytest.raises(ConfigurationError):
        generate_fleet_trace(10.0, [_spec("a", workload="nope")])
