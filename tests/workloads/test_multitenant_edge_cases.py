"""Edge cases of the multi-tenant trace generator (fleet mixes hit these)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import TenantSpec, generate_multitenant_trace


def _spec(name, rate, **kwargs):
    return TenantSpec(
        name=name, model_id="m0", priority="interactive", rate_per_hour=rate, **kwargs
    )


def test_zero_rate_tenant_contributes_nothing():
    """Fleet mixes mute tenants per device: rate 0 is valid, not an error."""
    trace = generate_multitenant_trace(
        3600.0, [_spec("live", 60.0), _spec("muted", 0.0)], seed=3
    )
    assert trace
    assert all(r.tenant == "live" for r in trace)
    # All tenants muted: a valid, empty trace.
    assert generate_multitenant_trace(3600.0, [_spec("muted", 0.0)], seed=3) == []


def test_negative_rate_still_rejected():
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(3600.0, [_spec("bad", -1.0)], seed=3)


def test_muted_tenant_does_not_perturb_others():
    alone = generate_multitenant_trace(3600.0, [_spec("live", 60.0)], seed=3)
    mixed = generate_multitenant_trace(
        3600.0, [_spec("muted", 0.0), _spec("live", 60.0)], seed=3
    )
    assert alone == mixed


def test_single_request_trace():
    """A near-zero rate over a short window routinely yields 0 or 1
    arrivals; both must round-trip through the generator cleanly."""
    for seed in range(20):
        trace = generate_multitenant_trace(10.0, [_spec("rare", 30.0)], seed=seed)
        assert len(trace) <= 3
        for r in trace:
            assert 0 <= r.at < 10.0
            assert r.prompt_tokens > 0 and r.output_tokens >= 0


def test_tenant_order_does_not_change_trace():
    specs = [_spec("a", 40.0), _spec("b", 25.0), _spec("c", 10.0)]
    forward = generate_multitenant_trace(3600.0, specs, seed=9)
    backward = generate_multitenant_trace(3600.0, list(reversed(specs)), seed=9)
    assert forward == backward
