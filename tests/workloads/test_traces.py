"""Tests for request traces and pressure phases."""

import pytest

from repro.config import GiB
from repro.errors import ConfigurationError
from repro.workloads.traces import (
    TenantSpec,
    generate_multitenant_trace,
    generate_pressure_phases,
    generate_trace,
)


def test_trace_rate_and_ordering():
    trace = generate_trace(3600.0, rate_per_hour=60, seed=1)
    # Poisson-ish: within a loose band of the requested rate.
    assert 30 <= len(trace) <= 100
    times = [e.at for e in trace]
    assert times == sorted(times)
    assert all(0 <= t < 3600 for t in times)


def test_trace_deterministic_per_seed():
    a = generate_trace(1000, 30, seed=5)
    b = generate_trace(1000, 30, seed=5)
    c = generate_trace(1000, 30, seed=6)
    assert [(e.at, e.kind) for e in a] == [(e.at, e.kind) for e in b]
    assert [(e.at, e.kind) for e in a] != [(e.at, e.kind) for e in c]


def test_trace_mix_respected():
    trace = generate_trace(36000, 100, seed=2, mix={"droidtask": 1.0})
    assert trace
    assert all(e.kind == "droidtask" for e in trace)
    for event in trace:
        assert 256 <= event.prompt_tokens <= 640
        assert 8 <= event.output_tokens <= 48


def test_trace_validation():
    with pytest.raises(ConfigurationError):
        generate_trace(0, 10)
    with pytest.raises(ConfigurationError):
        generate_trace(100, 10, mix={"mmlu": 1.0})


def test_pressure_phases_alternate():
    phases = generate_pressure_phases(2000, 1 * GiB, 8 * GiB, period=300, seed=1)
    assert phases[0].pressure_bytes == 1 * GiB
    levels = [p.pressure_bytes for p in phases]
    assert all(a != b for a, b in zip(levels, levels[1:]))
    starts = [p.start for p in phases]
    assert starts == sorted(starts)
    with pytest.raises(ConfigurationError):
        generate_pressure_phases(100, 1, 2, period=0)


# ----------------------------------------------------------------------
# multi-tenant traces
# ----------------------------------------------------------------------
TENANTS = [
    TenantSpec("chat", "m", "interactive", rate_per_hour=120),
    TenantSpec("mail", "m", "batch", rate_per_hour=60, workload="personachat"),
    TenantSpec("indexer", "n", "background", rate_per_hour=30, workload="droidtask"),
]


def test_multitenant_trace_sorted_and_bounded():
    trace = generate_multitenant_trace(1800.0, TENANTS, seed=4)
    assert trace
    keys = [(e.at, e.tenant) for e in trace]
    assert keys == sorted(keys)
    assert all(0 < e.at < 1800.0 for e in trace)
    assert {e.priority for e in trace} == {"interactive", "batch", "background"}
    assert {e.model_id for e in trace} == {"m", "n"}


def test_multitenant_trace_deterministic_per_seed():
    a = generate_multitenant_trace(1000.0, TENANTS, seed=5)
    b = generate_multitenant_trace(1000.0, TENANTS, seed=5)
    c = generate_multitenant_trace(1000.0, TENANTS, seed=6)
    assert a == b
    assert a != c


def test_adding_a_tenant_does_not_perturb_others():
    solo = generate_multitenant_trace(1000.0, TENANTS[:1], seed=5)
    both = generate_multitenant_trace(1000.0, TENANTS[:2], seed=5)
    assert [e for e in both if e.tenant == "chat"] == solo


def test_bursts_increase_arrivals():
    flat = TenantSpec("t", "m", "interactive", rate_per_hour=60)
    bursty = TenantSpec(
        "t", "m", "interactive", rate_per_hour=60,
        burst_factor=10.0, burst_period=300.0, burst_duration=60.0,
    )
    n_flat = len(generate_multitenant_trace(3600.0, [flat], seed=9))
    n_bursty = len(generate_multitenant_trace(3600.0, [bursty], seed=9))
    assert n_bursty > 1.5 * n_flat


def test_multitenant_trace_validation():
    spec = TENANTS[0]
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(0.0, TENANTS)
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(100.0, [])
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(100.0, [spec, spec])  # duplicate names
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(100.0, [TenantSpec("x", "m", "urgent", 10)])
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(100.0, [TenantSpec("x", "m", "batch", -1)])
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(
            100.0, [TenantSpec("x", "m", "batch", 10, workload="mmlu")]
        )
    with pytest.raises(ConfigurationError):
        generate_multitenant_trace(
            100.0, [TenantSpec("x", "m", "batch", 10, output_tokens=(9, 3))]
        )
