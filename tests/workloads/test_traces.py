"""Tests for request traces and pressure phases."""

import pytest

from repro.config import GiB
from repro.errors import ConfigurationError
from repro.workloads.traces import generate_pressure_phases, generate_trace


def test_trace_rate_and_ordering():
    trace = generate_trace(3600.0, rate_per_hour=60, seed=1)
    # Poisson-ish: within a loose band of the requested rate.
    assert 30 <= len(trace) <= 100
    times = [e.at for e in trace]
    assert times == sorted(times)
    assert all(0 <= t < 3600 for t in times)


def test_trace_deterministic_per_seed():
    a = generate_trace(1000, 30, seed=5)
    b = generate_trace(1000, 30, seed=5)
    c = generate_trace(1000, 30, seed=6)
    assert [(e.at, e.kind) for e in a] == [(e.at, e.kind) for e in b]
    assert [(e.at, e.kind) for e in a] != [(e.at, e.kind) for e in c]


def test_trace_mix_respected():
    trace = generate_trace(36000, 100, seed=2, mix={"droidtask": 1.0})
    assert trace
    assert all(e.kind == "droidtask" for e in trace)
    for event in trace:
        assert 256 <= event.prompt_tokens <= 640
        assert 8 <= event.output_tokens <= 48


def test_trace_validation():
    with pytest.raises(ConfigurationError):
        generate_trace(0, 10)
    with pytest.raises(ConfigurationError):
        generate_trace(100, 10, mix={"mmlu": 1.0})


def test_pressure_phases_alternate():
    phases = generate_pressure_phases(2000, 1 * GiB, 8 * GiB, period=300, seed=1)
    assert phases[0].pressure_bytes == 1 * GiB
    levels = [p.pressure_bytes for p in phases]
    assert all(a != b for a, b in zip(levels, levels[1:]))
    starts = [p.start for p in phases]
    assert starts == sorted(starts)
    with pytest.raises(ConfigurationError):
        generate_pressure_phases(100, 1, 2, period=0)
