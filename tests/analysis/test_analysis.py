"""Tests for metrics, table rendering, and the LoC inventory."""

import pytest

from repro.analysis import (
    PAPER_LOC,
    LatencySummary,
    count_package_loc,
    geomean,
    mean,
    percent_change,
    percentile,
    reduction,
    render_bars,
    render_table,
    speedup,
)
from repro.errors import ConfigurationError


def test_mean_and_geomean():
    assert mean([1, 2, 3]) == 2
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert geomean([10, 10, 10]) == pytest.approx(10.0)


def test_geomean_rejects_nonpositive_and_empty():
    with pytest.raises(ConfigurationError):
        geomean([])
    with pytest.raises(ConfigurationError):
        geomean([1, 0])
    with pytest.raises(ConfigurationError):
        mean([])


def test_percent_change_and_reduction():
    assert percent_change(110, 100) == pytest.approx(10.0)
    assert percent_change(90, 100) == pytest.approx(-10.0)
    assert reduction(100, 25) == pytest.approx(75.0)
    assert speedup(10, 2) == pytest.approx(5.0)
    with pytest.raises(ConfigurationError):
        percent_change(1, 0)


def test_render_table_alignment():
    out = render_table(["sys", "ttft"], [["TZ-LLM", 1.234], ["Strawman", 10.5]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "sys" in lines[1] and "ttft" in lines[1]
    assert len(lines) == 5
    # Columns align.
    assert lines[3].index("|") == lines[4].index("|")


def test_render_bars():
    out = render_bars(["a", "b"], [1.0, 2.0], width=10, unit="s")
    lines = out.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") == 10  # the max fills the width
    assert lines[0].count("#") == 5


def test_render_bars_handles_zero():
    out = render_bars(["z"], [0.0])
    assert "0" in out


def test_loc_inventory_counts_this_package():
    counts = count_package_loc()
    assert sum(counts.values()) > 3000  # the reproduction is substantial
    tee = count_package_loc("tee")
    assert 0 < sum(tee.values()) < sum(counts.values())
    # The TEE NPU co-driver stays small, like the paper's ~1 kLoC driver.
    npu_driver = [v for k, v in tee.items() if "npu_driver" in k]
    assert npu_driver and npu_driver[0] < 400


def test_paper_loc_reference_table():
    assert PAPER_LOC["TEE OS additions (CMA mapping + TZASC/TZPC config)"] == 112
    assert PAPER_LOC["Rockchip NPU driver stack avoided"] == 60_000


def test_percentile_interpolates_between_ranks():
    values = [4.0, 1.0, 3.0, 2.0]  # order must not matter
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile(values, 25) == pytest.approx(1.75)
    assert percentile([7.0], 99) == 7.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ConfigurationError):
        percentile([], 50)
    with pytest.raises(ConfigurationError):
        percentile([1.0], -1)
    with pytest.raises(ConfigurationError):
        percentile([1.0], 100.5)


def test_latency_summary_from_values():
    summary = LatencySummary.from_values([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.p50 == pytest.approx(2.5)
    assert summary.max == 4.0
    assert summary.p95 <= summary.p99 <= summary.max
    row = summary.row()
    assert row == ["2.500", "3.850", "3.970", "4.000"]
    with pytest.raises(ConfigurationError):
        LatencySummary.from_values([])
