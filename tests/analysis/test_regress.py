"""Tests for the perf-regression gate (repro.analysis.regress)."""

import json
import os

import pytest

from repro.analysis.regress import (
    Tolerance,
    compare,
    flatten_metrics,
    load_summaries,
    main,
    render_markdown,
    update_baselines,
)


# ----------------------------------------------------------------------
# flattening
# ----------------------------------------------------------------------
def test_flatten_nested_dicts_and_lists():
    flat = flatten_metrics(
        {"a": {"b": 1, "c": [2.5, {"d": 3}]}, "e": 4}
    )
    assert flat == {"a.b": 1.0, "a.c.0": 2.5, "a.c.1.d": 3.0, "e": 4.0}


def test_flatten_skips_non_numeric_leaves_but_keeps_bools():
    flat = flatten_metrics({"name": "fig12", "ok": True, "none": None, "v": 7})
    assert flat == {"ok": 1.0, "v": 7.0}


# ----------------------------------------------------------------------
# comparison statuses
# ----------------------------------------------------------------------
def test_compare_ok_within_default_tolerance():
    report = compare({"b": {"m": 100.0}}, {"b": {"m": 104.0}})
    (delta,) = report.deltas
    assert delta.status == "ok"
    assert delta.change == pytest.approx(0.04)
    assert report.passed


def test_compare_flags_drift_beyond_tolerance():
    report = compare({"b": {"m": 100.0}}, {"b": {"m": 110.0}})
    (delta,) = report.deltas
    assert delta.status == "drift"
    assert not report.passed
    assert report.drifted == [delta]


def test_compare_missing_and_new_metrics():
    report = compare(
        {"b": {"gone": 1.0, "kept": 2.0}},
        {"b": {"kept": 2.0, "added": 3.0}},
    )
    statuses = {d.path: d.status for d in report.deltas}
    assert statuses == {"gone": "missing_fresh", "kept": "ok", "added": "new"}
    assert not report.passed  # missing_fresh gates


def test_compare_missing_bench_gates_new_bench_does_not():
    report = compare({"old": {"m": 1.0}}, {"brand": {"m": 1.0}})
    assert report.missing_benches == ["old"]
    assert not report.passed
    report = compare({}, {"brand": {"m": 1.0}})
    assert report.passed  # unbaselined benches are informational


def test_tolerance_pattern_widens_band():
    baselines = {"tab_loc": {"total": 1000.0}}
    fresh = {"tab_loc": {"total": 1400.0}}
    assert not compare(baselines, fresh).passed
    assert compare(
        baselines, fresh, (Tolerance("tab_loc.*", rtol=0.5),)
    ).passed


def test_zero_baseline_uses_atol():
    report = compare({"b": {"m": 0.0}}, {"b": {"m": 0.0}})
    assert report.passed
    report = compare({"b": {"m": 0.0}}, {"b": {"m": 0.5}})
    assert not report.passed


# ----------------------------------------------------------------------
# markdown report
# ----------------------------------------------------------------------
def test_render_markdown_shows_drift_rows():
    report = compare({"b": {"good": 1.0, "bad": 100.0}}, {"b": {"good": 1.0, "bad": 200.0}})
    text = render_markdown(report)
    assert "FAIL" in text
    assert "| b | bad | 100 | 200 | +100.00% | drift |" in text
    assert "good" not in text  # ok rows hidden unless verbose
    assert "good" in render_markdown(report, verbose=True)


def test_render_markdown_pass_is_quiet():
    report = compare({"b": {"m": 1.0}}, {"b": {"m": 1.0}})
    text = render_markdown(report)
    assert "PASS" in text
    assert "No drift." in text


# ----------------------------------------------------------------------
# summary loading (volatile keys ignored)
# ----------------------------------------------------------------------
def _write_summary(directory, name, metrics, **extra):
    os.makedirs(directory, exist_ok=True)
    payload = {"name": name, "metrics": metrics}
    payload.update(extra)
    with open(os.path.join(directory, "BENCH_%s.json" % name), "w") as handle:
        json.dump(payload, handle)


def test_load_summaries_strips_volatile_keys(tmp_path):
    d = str(tmp_path)
    _write_summary(
        d,
        "fig",
        {"ttft": 1.5, "wall_time_s": 99.0, "git_rev": "abc", "generated_at": 1.0},
    )
    assert load_summaries(d) == {"fig": {"ttft": 1.5}}


def test_volatile_drift_never_gates(tmp_path):
    base = str(tmp_path / "base")
    fresh = str(tmp_path / "fresh")
    _write_summary(base, "fig", {"ttft": 1.5, "wall_time_s": 10.0})
    _write_summary(fresh, "fig", {"ttft": 1.5, "wall_time_s": 5000.0})
    report = compare(load_summaries(base), load_summaries(fresh))
    assert report.passed


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_main_check_passes_and_fails(tmp_path, capsys):
    base = str(tmp_path / "base")
    fresh = str(tmp_path / "fresh")
    _write_summary(base, "fig", {"ttft": 1.5})
    _write_summary(fresh, "fig", {"ttft": 1.5})
    assert main(["--check", "--baselines", base, "--fresh", fresh]) == 0
    _write_summary(fresh, "fig", {"ttft": 9.0})
    assert main(["--check", "--baselines", base, "--fresh", fresh]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out


def test_main_check_fails_without_baselines(tmp_path):
    assert main(
        ["--check", "--baselines", str(tmp_path / "none"), "--fresh", str(tmp_path)]
    ) == 1


def test_main_update_promotes_baselines(tmp_path, capsys):
    base = str(tmp_path / "base")
    fresh = str(tmp_path / "fresh")
    _write_summary(fresh, "fig", {"ttft": 2.0})
    assert main(["--update", "--baselines", base, "--fresh", fresh]) == 0
    assert load_summaries(base) == {"fig": {"ttft": 2.0}}


def test_main_writes_markdown_report(tmp_path):
    base = str(tmp_path / "base")
    fresh = str(tmp_path / "fresh")
    _write_summary(base, "fig", {"ttft": 1.5})
    _write_summary(fresh, "fig", {"ttft": 1.5})
    out = str(tmp_path / "report" / "perf.md")
    assert main(["--baselines", base, "--fresh", fresh, "--markdown", out]) == 0
    with open(out) as handle:
        assert "PASS" in handle.read()


def test_main_custom_tolerance_flag(tmp_path):
    base = str(tmp_path / "base")
    fresh = str(tmp_path / "fresh")
    _write_summary(base, "fig", {"loose": 100.0})
    _write_summary(fresh, "fig", {"loose": 140.0})
    args = ["--check", "--baselines", base, "--fresh", fresh]
    assert main(args) == 1
    assert main(args + ["--tolerance", "fig.loose=0.5"]) == 0


def test_update_baselines_returns_copied_paths(tmp_path):
    fresh = str(tmp_path / "fresh")
    base = str(tmp_path / "base")
    _write_summary(fresh, "a", {"x": 1})
    _write_summary(fresh, "b", {"x": 2})
    copied = update_baselines(fresh, base)
    assert [os.path.basename(p) for p in copied] == [
        "BENCH_a.json",
        "BENCH_b.json",
    ]
