"""Percentile edge cases and cross-module consistency (one definition).

The repo computes percentiles in three places: the analysis helpers
(:func:`repro.analysis.metrics.percentile`), the serving SLO histograms
(via :class:`~repro.analysis.metrics.LatencySummary`), and the simulator
resource stats (:func:`repro.sim.resources._percentile`).  All three
must agree on the same samples — a p99 that differs by implementation
is a regression-gate hazard.
"""

import pytest

from repro.analysis.metrics import LatencySummary, percentile
from repro.errors import ConfigurationError
from repro.sim.resources import _percentile


# ----------------------------------------------------------------------
# analysis.metrics.percentile edge cases
# ----------------------------------------------------------------------
def test_percentile_rejects_empty():
    with pytest.raises(ConfigurationError):
        percentile([], 50)


def test_percentile_rejects_out_of_range_p():
    with pytest.raises(ConfigurationError):
        percentile([1.0], -1)
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)


def test_percentile_single_sample_is_that_sample():
    for p in (0, 50, 99, 100):
        assert percentile([7.5], p) == 7.5


def test_percentile_p0_and_p100_are_min_and_max():
    values = [5.0, 1.0, 3.0, 2.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 5.0


def test_percentile_sorts_its_input():
    assert percentile([3.0, 1.0, 2.0], 50) == 2.0


def test_percentile_interpolates_between_ranks():
    # ranks 0..3; p50 -> rank 1.5 -> midpoint of 2 and 3.
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 99) == pytest.approx(3.97)


def test_identical_samples_have_flat_percentiles():
    summary = LatencySummary.from_values([2.0] * 10)
    assert summary.p50 == summary.p95 == summary.p99 == summary.max == 2.0


# ----------------------------------------------------------------------
# consistency across modules
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "values",
    [
        [1.0],
        [0.0, 1.0, 2.0, 3.0],
        [5.0, 1.0, 4.0, 1.5, 2.0, 9.0, 0.25],
        list(float(i * i % 17) for i in range(50)),
    ],
)
def test_sim_percentile_matches_analysis_percentile(values):
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert _percentile(list(values), q) == pytest.approx(
            percentile(values, q * 100.0)
        )


def test_sim_percentile_empty_is_zero():
    # The sim-side helper keeps the 0-for-empty contract: resource stats
    # render before any request completes.
    assert _percentile([], 0.99) == 0.0


def test_resource_p99_matches_latency_summary():
    from repro.serve.slo import LatencyHistogram
    from repro.sim import Resource, Simulator

    sim = Simulator()
    res = Resource(sim, capacity=1, name="one")

    def worker():
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)

    for _ in range(5):
        sim.process(worker())
    sim.run()
    waits = res.stats.wait_times
    assert len(waits) == 5
    hist = LatencyHistogram("wait")
    for w in waits:
        hist.add(w)
    summary = hist.summary()
    assert res.stats.p99_wait() == pytest.approx(summary.p99)
    assert res.stats.p99_wait() == pytest.approx(percentile(waits, 99))
