"""Tests for the model zoo and tensor tables."""

import pytest

from repro.config import GB
from repro.errors import ConfigurationError
from repro.llm import MODELS, ModelSpec, build_tensor_table, get_model, tensor_plaintext
from repro.llm.models import PAPER_PARAM_BYTES
from repro.llm.tensors import PAYLOAD_MAX, PAYLOAD_MIN, payload_size


@pytest.mark.parametrize("model_id", sorted(MODELS))
def test_param_bytes_match_paper_within_tolerance(model_id):
    """Derived q8 sizes land near the paper's reported file sizes.

    TinyLlama is a 1.1B-parameter model that the paper rounds to a
    "1.0 GB" file, hence the slightly wider tolerance.
    """
    spec = get_model(model_id)
    paper = PAPER_PARAM_BYTES[model_id]
    assert abs(spec.param_bytes - paper) / paper < 0.11


def test_unknown_model_rejected():
    with pytest.raises(ConfigurationError):
        get_model("gpt-5")


def test_invalid_shapes_rejected():
    with pytest.raises(ConfigurationError):
        ModelSpec("bad", "Bad", 2, 100, 256, 3, 1, 1000)  # hidden % heads != 0
    with pytest.raises(ConfigurationError):
        ModelSpec("bad", "Bad", 2, 96, 256, 4, 3, 1000)  # heads % kv != 0


@pytest.mark.parametrize("model_id", sorted(MODELS))
def test_tensor_table_accounts_all_parameter_bytes(model_id):
    spec = get_model(model_id)
    table = build_tensor_table(spec)
    assert sum(t.nominal_bytes for t in table) == pytest.approx(spec.param_bytes, rel=1e-6)
    # Topological indices are dense and ordered.
    assert [t.index for t in table] == list(range(len(table)))
    # Layers appear in order.
    layers = [t.layer for t in table if t.layer >= 0]
    assert layers == sorted(layers)


def test_tensor_table_moe_has_per_expert_tensors():
    from dataclasses import replace

    moe = replace(get_model("tinyllama-1.1b-q8"), model_id="moe", n_experts=4, experts_per_token=2)
    table = build_tensor_table(moe)
    experts = [t for t in table if t.expert >= 0]
    assert len(experts) == moe.n_layers * 4
    # MoE file is ~4x the FFN weight volume of the dense model.
    dense = sum(t.nominal_bytes for t in build_tensor_table(get_model("tinyllama-1.1b-q8")))
    assert sum(t.nominal_bytes for t in table) > 2 * dense


def test_payload_size_bounds():
    assert payload_size(1) == PAYLOAD_MIN
    assert payload_size(10 * GB) == PAYLOAD_MAX
    assert PAYLOAD_MIN <= payload_size(100 * 1024 * 1024) <= PAYLOAD_MAX


def test_tensor_plaintext_deterministic_and_distinct():
    spec = get_model("tinyllama-1.1b-q8")
    table = build_tensor_table(spec)
    a1 = tensor_plaintext(spec.model_id, table[0])
    a2 = tensor_plaintext(spec.model_id, table[0])
    b = tensor_plaintext(spec.model_id, table[1])
    assert a1 == a2
    assert a1 != b
    assert len(a1) == table[0].payload_bytes


def test_kv_and_activation_footprints():
    spec = get_model("llama-3-8b-q8")
    # 8B GQA: kv_dim = 8 * 128 = 1024; per token = 2*32*1024*2 = 131072 B.
    assert spec.kv_bytes_per_token() == 131072
    assert spec.kv_bytes(512) == 512 * 131072
    assert spec.activation_bytes(512) > 0


def test_prefill_flops_scale_linearly_with_tokens():
    spec = get_model("qwen2.5-3b-q8")
    assert spec.prefill_flops(200) == pytest.approx(2 * spec.prefill_flops(100), rel=1e-9)
