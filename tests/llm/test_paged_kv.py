"""Unit tests for the block-paged KV cache (repro.llm.kv_cache)."""

import pytest

from repro.errors import ConfigurationError, OutOfMemory
from repro.llm import TINYLLAMA, KVBlockPool, PagedKVCache


def make_pool(block_tokens=16, total_blocks=8):
    return KVBlockPool(TINYLLAMA, block_tokens, total_blocks)


# ----------------------------------------------------------------------
# pool
# ----------------------------------------------------------------------
def test_pool_validates_config():
    with pytest.raises(ConfigurationError):
        KVBlockPool(TINYLLAMA, 0, 8)
    with pytest.raises(ConfigurationError):
        KVBlockPool(TINYLLAMA, 16, 0)


def test_pool_block_accounting():
    pool = make_pool()
    assert pool.block_bytes == TINYLLAMA.kv_bytes(16)
    assert pool.free_blocks == 8
    assert pool.blocks_for_tokens(1) == 1
    assert pool.blocks_for_tokens(16) == 1
    assert pool.blocks_for_tokens(17) == 2
    assert pool.blocks_for_tokens(0) == 0


def test_pool_alloc_free_and_exhaustion():
    pool = make_pool(total_blocks=2)
    a = pool.alloc_block()
    b = pool.alloc_block()
    assert pool.used_blocks == 2 and pool.free_blocks == 0
    with pytest.raises(OutOfMemory):
        pool.alloc_block()
    pool.release_block(a)
    pool.release_block(b)
    assert pool.used_blocks == 0
    assert pool.bytes_used == 0


def test_pool_reuses_lowest_block_id_first():
    """Free-list reuse keeps the high-water mark low — churn is absorbed
    inside the already-protected span (the §4.2 argument)."""
    pool = make_pool()
    ids = [pool.alloc_block() for _ in range(4)]
    assert ids == [0, 1, 2, 3]
    pool.release_block(1)
    pool.release_block(0)
    assert pool.alloc_block() == 0
    assert pool.alloc_block() == 1
    assert pool.backing_blocks == 4  # never grew past the peak


def test_pool_backing_high_water_resets_only_at_full_drain():
    pool = make_pool()
    ids = [pool.alloc_block() for _ in range(3)]
    assert pool.backing_blocks == 3
    pool.release_block(ids[2])
    assert pool.backing_blocks == 3  # partially drained: mark holds
    pool.release_block(ids[0])
    pool.release_block(ids[1])
    assert pool.backing_blocks == 0  # empty: the region may shrink


def test_pool_reservations_gate_admission():
    pool = make_pool(total_blocks=4)
    assert pool.can_admit(4)
    pool.reserve(3)
    assert not pool.can_admit(2)
    assert pool.can_admit(1)
    # A reservation converts into real blocks without double counting.
    pool.alloc_block(from_reservation=True)
    assert pool.reserved == 2
    pool.cancel_reservation(2)
    assert pool.reserved == 0
    assert pool.can_admit(3)


# ----------------------------------------------------------------------
# paged cache
# ----------------------------------------------------------------------
def test_paged_cache_grows_by_blocks():
    pool = make_pool(block_tokens=16)
    kv = PagedKVCache(pool)
    kv.init_prompt(20)  # 2 blocks
    assert kv.tokens == 20
    assert len(kv.block_ids) == 2
    for _ in range(12):
        kv.append_token()
    assert kv.tokens == 32 and len(kv.block_ids) == 2
    kv.append_token()  # 33rd token needs a third block
    assert len(kv.block_ids) == 3
    assert kv.bytes_used == 3 * pool.block_bytes


def test_paged_cache_release_is_idempotent():
    pool = make_pool()
    kv = PagedKVCache(pool)
    kv.init_prompt(40)
    assert pool.used_blocks == 3
    kv.release()
    assert pool.used_blocks == 0
    kv.release()  # exactly-once semantics: second call is a no-op
    assert pool.used_blocks == 0
    assert kv.bytes_used == 0


def test_paged_cache_release_cancels_leftover_reservation():
    pool = make_pool(total_blocks=8)
    held = 4
    pool.reserve(held)
    kv = PagedKVCache(pool, reserved_blocks=held)
    kv.init_prompt(20)  # consumes 2 of the 4 held blocks
    assert pool.reserved == 2
    kv.release()
    assert pool.reserved == 0
    assert pool.used_blocks == 0


def test_park_and_restore_roundtrip():
    pool = make_pool()
    kv = PagedKVCache(pool)
    kv.init_prompt(20)
    kv.append_token()
    checkpoint = kv.park()
    assert checkpoint.tokens == 21
    assert checkpoint.block_ids == tuple(kv.block_ids)
    assert pool.used_blocks == 2  # parked blocks stay owned
    kv.restore(checkpoint)
    kv.append_token()
    assert kv.tokens == 22


def test_restore_rejects_tampered_block_list():
    pool = make_pool()
    kv = PagedKVCache(pool)
    kv.init_prompt(20)
    checkpoint = kv.park()
    other = PagedKVCache(pool)
    other.init_prompt(4)
    with pytest.raises(ConfigurationError):
        other.restore(checkpoint)
