"""Property-style conservation fuzz over the refcounted block pool.

Seeded random interleavings of every pool-mutating operation —
reserve / cancel / shared prefill / publish / decode growth / park /
restore / release / tree flush — with the pool's own
``check_conservation`` invariant asserted after *every* step:

    free + active + parked + cached == total
    total_refs == sum of holder refs, shared_saved >= 0

At drain (everything released, reservations cancelled, tree flushed)
the pool must be exactly empty: ``free == total`` and
``kv bytes in use == 0``.
"""

import random

import pytest

from repro.errors import ConfigurationError, OutOfMemory
from repro.llm import TINYLLAMA, KVBlockPool, PagedKVCache, PromptSpec
from repro.llm.kv_cache import PrefixTree

B = 16
TOTAL = 48


class Harness:
    """One fuzzed pool with a population of live and parked caches."""

    def __init__(self, rng):
        self.rng = rng
        self.pool = KVBlockPool(TINYLLAMA, B, TOTAL)
        self.tree = PrefixTree(self.pool)
        self.live = []    # PagedKVCache with an initialized prompt
        self.parked = []  # (kv, checkpoint)
        self.reserved_by = {}  # owner -> blocks held in the pool reservation
        self.serial = 0

    # -- op table ------------------------------------------------------
    def op_reserve(self):
        blocks = self.rng.randrange(1, 5)
        if not self.pool.can_admit(blocks):
            return
        owner = "t/r%d" % self.serial
        self.pool.reserve(blocks, owner=owner)
        self.reserved_by[owner] = self.reserved_by.get(owner, 0) + blocks

    def op_cancel(self):
        if not self.reserved_by:
            return
        owner = self.rng.choice(sorted(self.reserved_by))
        blocks = self.reserved_by.pop(owner)
        self.pool.cancel_reservation(blocks, owner=owner)

    def op_admit(self):
        self.serial += 1
        owner = "t/q%d" % self.serial
        prefix = self.rng.choice([0, B, 2 * B, 2 * B + 5])
        session = "t/s%d" % self.rng.randrange(4)
        context = self.rng.choice([0, B, B + 7, 3 * B])
        new = self.rng.randrange(1, 3 * B)
        spec = PromptSpec(
            prefix_id="t/p%d" % self.rng.randrange(3) if prefix else None,
            prefix_tokens=prefix,
            session_id=session,
            context_tokens=context,
            new_tokens=new,
        )
        kv = PagedKVCache(self.pool, owner=owner)
        try:
            kv.init_prompt_shared(spec, self.tree)
        except OutOfMemory:
            kv.release()
            return
        self.live.append(kv)

    def op_publish(self):
        if self.live:
            self.rng.choice(self.live).publish(self.tree)

    def op_append(self):
        if not self.live:
            return
        kv = self.rng.choice(self.live)
        try:
            kv.ensure_capacity(kv.tokens + self.rng.randrange(1, B + 1))
        except OutOfMemory:
            return
        kv.append_token()

    def op_park(self):
        if not self.live:
            return
        kv = self.rng.choice(self.live)
        self.live.remove(kv)
        self.parked.append((kv, kv.park()))

    def op_restore(self):
        if not self.parked:
            return
        kv, checkpoint = self.parked.pop(self.rng.randrange(len(self.parked)))
        kv.restore(checkpoint)
        self.live.append(kv)

    def op_release_live(self):
        if not self.live:
            return
        kv = self.live.pop(self.rng.randrange(len(self.live)))
        kv.release()

    def op_release_parked(self):
        """Terminal failure while parked: blocks still come back exactly once."""
        if not self.parked:
            return
        kv, _ = self.parked.pop(self.rng.randrange(len(self.parked)))
        kv.release()

    def op_flush(self):
        self.tree.flush()

    def drain(self):
        for kv in self.live:
            kv.release()
        for kv, _ in self.parked:
            kv.release()
        self.live, self.parked = [], []
        for owner, blocks in list(self.reserved_by.items()):
            self.pool.cancel_reservation(blocks, owner=owner)
        self.reserved_by.clear()
        self.tree.flush()


OPS = [
    ("reserve", 1),
    ("cancel", 1),
    ("admit", 6),
    ("publish", 3),
    ("append", 4),
    ("park", 2),
    ("restore", 2),
    ("release_live", 3),
    ("release_parked", 1),
    ("flush", 1),
]
DECK = [name for name, weight in OPS for _ in range(weight)]


@pytest.mark.parametrize("seed", [1, 7, 23, 101, 4242])
def test_interleaved_ops_conserve_blocks(seed):
    rng = random.Random(seed)
    h = Harness(rng)
    for step in range(400):
        getattr(h, "op_" + rng.choice(DECK))()
        h.pool.check_conservation()
        used = h.pool.active_blocks + h.pool.parked_blocks + h.pool.cached_blocks
        assert h.pool.free_blocks + used == TOTAL
        assert h.pool.shared_saved_blocks >= 0
    h.drain()
    h.pool.check_conservation()
    assert h.pool.free_blocks == TOTAL
    assert h.pool.used_blocks == 0
    assert h.pool.reserved == 0
    assert h.pool.total_refs == 0


@pytest.mark.parametrize("seed", [3, 77])
def test_refcounts_match_holder_population(seed):
    """Cross-check total_refs against an independent holder census."""
    rng = random.Random(seed)
    h = Harness(rng)
    for step in range(250):
        getattr(h, "op_" + rng.choice(DECK))()
        census = {}
        for kv in h.live:
            for block in kv.block_ids:
                census[block] = census.get(block, 0) + 1
        for kv, _ in h.parked:
            for block in kv.block_ids:
                census[block] = census.get(block, 0) + 1
        assert sum(census.values()) == h.pool.total_refs
        for block, refs in census.items():
            assert h.pool.refcount(block) == refs
    h.drain()
    assert h.pool.total_refs == 0
