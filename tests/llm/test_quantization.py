"""Unit + property tests for q8_0 block quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.llm.quantization import (
    BLOCK_SIZE,
    BYTES_PER_WEIGHT,
    dequantize_q8,
    quantization_error_bound,
    quantize_q8,
)


def test_roundtrip_error_within_half_step():
    rng = np.random.default_rng(7)
    weights = rng.normal(0, 0.02, size=(64, 128)).astype(np.float32)
    q = quantize_q8(weights)
    restored = dequantize_q8(q)
    assert restored.shape == weights.shape
    # Per-block error bound: |w - w'| <= scale/2 for that block.
    flat = weights.reshape(-1)
    pad = (-len(flat)) % BLOCK_SIZE
    flat = np.concatenate([flat, np.zeros(pad, dtype=np.float32)])
    err = np.abs(flat - np.concatenate([restored.reshape(-1), np.zeros(pad)]))
    per_block_err = err.reshape(-1, BLOCK_SIZE).max(axis=1)
    assert np.all(per_block_err <= q.scales / 2 + 1e-7)


def test_zero_tensor_quantizes_to_zero():
    q = quantize_q8(np.zeros(100, dtype=np.float32))
    assert np.all(q.codes == 0)
    assert np.all(q.scales == 0)
    assert np.all(dequantize_q8(q) == 0)


def test_empty_tensor_rejected():
    with pytest.raises(ConfigurationError):
        quantize_q8(np.zeros(0))


def test_serialized_size_matches_bytes_per_weight():
    weights = np.ones(1024, dtype=np.float32)
    q = quantize_q8(weights)
    assert q.nbytes == pytest.approx(1024 * BYTES_PER_WEIGHT)
    assert len(q.to_bytes()) == q.nbytes


def test_codes_within_int8_symmetric_range():
    weights = np.array([1e6, -1e6, 0.5, -0.5] * 8, dtype=np.float32)
    q = quantize_q8(weights)
    assert q.codes.max() <= 127 and q.codes.min() >= -127


def test_extreme_values_preserved_in_sign_and_magnitude():
    weights = np.linspace(-1, 1, BLOCK_SIZE).astype(np.float32)
    restored = dequantize_q8(quantize_q8(weights))
    assert np.sign(restored[0]) == -1 and np.sign(restored[-1]) == 1
    assert restored.max() == pytest.approx(1.0, abs=0.01)


@given(
    weights=hnp.arrays(
        dtype=np.float32,
        shape=st.integers(min_value=1, max_value=300),
        elements=st.floats(min_value=-100, max_value=100, width=32),
    )
)
@settings(max_examples=50, deadline=None)
def test_property_error_bounded_by_half_max_scale(weights):
    q = quantize_q8(weights)
    restored = dequantize_q8(q)
    bound = quantization_error_bound(q)
    assert np.all(np.abs(weights - restored) <= bound + 1e-5)


@given(
    weights=hnp.arrays(
        dtype=np.float32,
        shape=st.integers(min_value=BLOCK_SIZE, max_value=4 * BLOCK_SIZE),
        elements=st.floats(min_value=-10, max_value=10, width=32),
    )
)
@settings(max_examples=40, deadline=None)
def test_property_requantization_is_idempotent(weights):
    """Quantize(dequantize(q)) reproduces q's values exactly."""
    q1 = quantize_q8(weights)
    r1 = dequantize_q8(q1)
    q2 = quantize_q8(r1)
    r2 = dequantize_q8(q2)
    assert np.allclose(r1, r2, atol=1e-6)
