"""Park/restore conservation invariants on the paged KV pool.

The memory observatory derives its occupancy and stranded series from
``free + active + parked == total``, so the pool must hold that identity
through every preemption shape: repeated park/restore cycles, double
park (idempotent), faulted restore (checkpoint divergence), and release
from the parked state.  These tests pin the identity and the terminal
``kv_bytes_in_use == 0`` on both the clean and the faulted path.
"""

import pytest

from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA, KVBlockPool, PagedKVCache


def make_pool(block_tokens=16, total_blocks=8):
    return KVBlockPool(TINYLLAMA, block_tokens, total_blocks)


def conserved(pool):
    return pool.free_blocks + pool.active_blocks + pool.parked_blocks == pool.total_blocks


# ----------------------------------------------------------------------
# conservation under preemption cycles
# ----------------------------------------------------------------------
def test_conservation_through_repeated_park_restore_cycles():
    pool = make_pool()
    kv = PagedKVCache(pool, owner="t/r1")
    kv.init_prompt(40)  # 3 blocks
    assert pool.active_blocks == 3 and pool.parked_blocks == 0
    for _ in range(5):
        checkpoint = kv.park()
        assert pool.parked_blocks == 3 and pool.active_blocks == 0
        assert conserved(pool)
        kv.restore(checkpoint)
        assert pool.parked_blocks == 0 and pool.active_blocks == 3
        assert conserved(pool)
    kv.release()
    assert pool.used_blocks == 0 and pool.parked_blocks == 0
    assert conserved(pool)


def test_park_is_idempotent_on_pool_counters():
    pool = make_pool()
    kv = PagedKVCache(pool, owner="t/r1")
    kv.init_prompt(32)  # 2 blocks
    kv.park()
    kv.park()  # second park must not double-shift active -> parked
    assert pool.parked_blocks == 2 and pool.active_blocks == 0
    assert conserved(pool)


def test_parked_and_active_sequences_coexist():
    pool = make_pool(total_blocks=8)
    victim = PagedKVCache(pool, owner="t/r1")
    victim.init_prompt(48)  # 3 blocks
    victim.park()
    winner = PagedKVCache(pool, owner="t/r2")
    winner.init_prompt(40)  # 3 blocks
    assert pool.parked_blocks == 3 and pool.active_blocks == 3
    assert pool.free_blocks == 2
    assert conserved(pool)
    winner.release()
    victim.restore(victim.park())  # no-op restore of the live checkpoint
    assert conserved(pool)


def test_growth_while_unparked_keeps_identity():
    pool = make_pool()
    kv = PagedKVCache(pool, owner="t/r1")
    kv.init_prompt(16)
    checkpoint = kv.park()
    kv.restore(checkpoint)
    for _ in range(32):  # grow across two block boundaries post-restore
        kv.append_token()
        assert conserved(pool)
    assert pool.active_blocks == 3


# ----------------------------------------------------------------------
# faulted restore
# ----------------------------------------------------------------------
def test_faulted_restore_leaves_blocks_parked_then_release_drains():
    pool = make_pool()
    kv = PagedKVCache(pool, owner="t/r1")
    kv.init_prompt(40)
    kv.park()
    tampered = PagedKVCache(pool, owner="t/r2")
    with pytest.raises(ConfigurationError):
        tampered.restore(kv.park())  # wrong block list: divergence
    # The fault happened *before* the unpark transition: the victim's
    # blocks are still accounted parked, nothing leaked or double-freed.
    assert pool.parked_blocks == 3
    assert conserved(pool)
    kv.release()  # release from the parked state
    assert pool.used_blocks == 0 and pool.parked_blocks == 0
    assert pool.bytes_used == 0
    assert conserved(pool)


def test_release_from_parked_returns_every_block_once():
    pool = make_pool()
    pool.reserve(4, owner="t/r1")  # the hold must really exist (strict)
    kv = PagedKVCache(pool, reserved_blocks=4, owner="t/r1")
    kv.init_prompt(40)  # consumes 3 of the 4 reserved
    kv.park()
    kv.release()
    kv.release()  # idempotent
    assert pool.free_blocks == pool.total_blocks
    assert pool.parked_blocks == 0 and pool.reserved == 0
    assert conserved(pool)


# ----------------------------------------------------------------------
# full stack: kv_bytes_in_use drains on clean and faulted paths
# ----------------------------------------------------------------------
def _batched_system():
    from repro.core import BatchConfig, TZLLM

    return TZLLM(
        TINYLLAMA, batch_config=BatchConfig(max_batch_size=2, block_tokens=16)
    )


def test_kv_bytes_in_use_drains_after_preemption_cycle():
    from repro.serve import GatewayConfig, ServeGateway

    system = _batched_system()
    gateway = ServeGateway(
        system, GatewayConfig(batching=True, shedding=False, preemption=True)
    )
    sim = system.sim
    bg1 = gateway.submit(32, 40, priority="background", tenant="bg1")
    bg2 = gateway.submit(32, 40, priority="background", tenant="bg2")
    holder = {}

    def later():
        yield sim.timeout(5.0)
        holder["rt"] = gateway.submit(16, 8, priority="interactive", tenant="rt")

    sim.process(later())
    for request in (bg1, bg2):
        sim.run_until(request.completion)
    sim.run_until(holder["rt"].completion)
    pool = system.ta.batch_engine.pool
    assert system.ta.batch_engine.evictions >= 1  # a park really happened
    assert system.ta.kv_bytes_in_use == 0
    assert pool.used_blocks == 0 and pool.parked_blocks == 0
    assert conserved(pool)


def test_kv_bytes_in_use_drains_after_faulted_attempt():
    from repro.core import BatchConfig, TZLLM
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.serve import GatewayConfig, ServeGateway

    # No param caching: every dispatch reads flash, so the injected read
    # error aborts the first attempt mid-inference and the retry runs
    # clean — the KV blocks of the failed attempt must all drain.
    system = TZLLM(
        TINYLLAMA,
        batch_config=BatchConfig(max_batch_size=2, block_tokens=16),
        cache_fraction=0.0,
    )
    system.run_infer(8, 0)  # cold start before arming
    plan = FaultPlan(
        11, [FaultSpec(site="flash.read_error", probability=1.0, max_fires=1)]
    )
    plan.injector(system.sim).arm(system)
    gateway = ServeGateway(
        system, GatewayConfig(batching=True, shedding=False, max_retries=2)
    )
    request = gateway.submit(32, 24, priority="batch", tenant="a")
    system.sim.run_until(request.completion)
    assert request.done  # retried past the injected crash
    pool = system.ta.batch_engine.pool
    assert system.ta.kv_bytes_in_use == 0
    assert pool.used_blocks == 0 and pool.parked_blocks == 0 and pool.reserved == 0
    assert conserved(pool)
