"""Tests for the encrypted model container."""

import pytest

from repro.crypto import checksum, decrypt, derive_key, unwrap_model_key, verify
from repro.errors import ModelFormatError
from repro.llm import get_model, pack_model, parse_container, tensor_plaintext

HW_KEY = derive_key(b"device", "hw")
MODEL_KEY = derive_key(b"provider", "model")


@pytest.fixture(scope="module")
def packed():
    spec = get_model("tinyllama-1.1b-q8")
    data = pack_model(spec, MODEL_KEY, HW_KEY)
    return spec, data, parse_container(data)


def test_roundtrip_header(packed):
    spec, _data, container = packed
    assert container.model_id == spec.model_id
    assert container.nominal_param_bytes == spec.param_bytes
    assert len(container.tensors) == 1 + 4 * spec.n_layers + 2


def test_payloads_encrypted_on_flash(packed):
    spec, data, container = packed
    tensor = container.tensor("blk.0.attn")
    raw = data[container.file_offset(tensor) : container.file_offset(tensor) + tensor.payload_bytes]
    plain = tensor_plaintext(spec.model_id, tensor)
    assert raw != plain  # ciphertext at rest


def test_tensor_decrypts_to_expected_weights(packed):
    spec, data, container = packed
    for name in ("token_embd", "blk.3.ffn", "output"):
        tensor = container.tensor(name)
        start = container.file_offset(tensor)
        ciphertext = data[start : start + tensor.payload_bytes]
        assert verify(ciphertext, tensor.checksum)
        plain = decrypt(MODEL_KEY, container.nonce, ciphertext, offset=tensor.offset)
        assert plain == tensor_plaintext(spec.model_id, tensor)


def test_wrapped_key_unwraps_under_hardware_key(packed):
    spec, _data, container = packed
    assert unwrap_model_key(HW_KEY, container.wrapped_key, spec.model_id) == MODEL_KEY


def test_ciphertext_checksum_catches_tamper(packed):
    spec, data, container = packed
    tensor = container.tensor("blk.1.attn")
    start = container.file_offset(tensor)
    mutated = bytearray(data[start : start + tensor.payload_bytes])
    mutated[0] ^= 0xFF
    assert not verify(bytes(mutated), tensor.checksum)


def test_out_of_order_decryption_matches(packed):
    """Tensors decrypt independently, in any order (pipeline requirement)."""
    spec, data, container = packed
    names = ["output", "blk.5.ffn", "token_embd", "blk.0.attn_norm"]
    for name in names:
        tensor = container.tensor(name)
        start = container.file_offset(tensor)
        ciphertext = data[start : start + tensor.payload_bytes]
        plain = decrypt(MODEL_KEY, container.nonce, ciphertext, offset=tensor.offset)
        assert plain == tensor_plaintext(spec.model_id, tensor)


def test_bad_magic_rejected():
    with pytest.raises(ModelFormatError):
        parse_container(b"NOPE" + b"\x00" * 64)


def test_truncated_container_rejected(packed):
    _spec, data, _container = packed
    with pytest.raises(ModelFormatError):
        parse_container(data[:100])


def test_missing_tensor_lookup_rejected(packed):
    _spec, _data, container = packed
    with pytest.raises(ModelFormatError):
        container.tensor("blk.99.attn")
