"""Tests for the computation DAG, cost model, and graph executor."""

import pytest

from repro.config import RK3588
from repro.errors import ConfigurationError
from repro.hw import AddrRange, Board
from repro.llm import (
    Engine,
    GraphExecutor,
    KVCache,
    DirectNPUBackend,
    REEDriverNPUBackend,
    build_decode_step_graph,
    build_prefill_graph,
    build_tensor_table,
    decode_tokens,
    get_model,
    op_duration,
)
from repro.ree.npu_driver import REENPUDriver
from repro.sim import Resource, Simulator

PLATFORM = RK3588
SPEC = get_model("llama-3-8b-q8")
TABLE = build_tensor_table(SPEC)


def total_time(graph, include_launch=True):
    total = 0.0
    for op in graph.ops:
        total += op_duration(op.flops, op.bytes_touched, PLATFORM, op.engine)
        if include_launch and op.engine == Engine.NPU:
            total += PLATFORM.npu.job_launch_latency
    return total


def test_prefill_graph_structure():
    graph = build_prefill_graph(SPEC, TABLE, 128, use_npu=True)
    assert len(graph) == 1 + 5 * SPEC.n_layers + 2
    graph.validate()
    # The graph is a chain.
    for index, op in enumerate(graph.ops):
        assert op.deps == ([] if index == 0 else [index - 1])
    # All parameter tensors appear exactly once, in file order.
    ordered = graph.tensors_in_order()
    assert [t.name for t in ordered] == [t.name for t in TABLE]


def test_cpu_only_prefill_hits_paper_anchor():
    graph = build_prefill_graph(SPEC, TABLE, 512, use_npu=False)
    assert all(op.engine == Engine.CPU for op in graph.ops)
    assert total_time(graph) == pytest.approx(164.0, rel=0.02)


def test_npu_prefill_speedup_hits_paper_anchor():
    cpu = total_time(build_prefill_graph(SPEC, TABLE, 512, use_npu=False))
    npu = total_time(build_prefill_graph(SPEC, TABLE, 512, use_npu=True))
    assert cpu / npu == pytest.approx(12.5, rel=0.05)


def test_npu_placement_only_matmuls():
    graph = build_prefill_graph(SPEC, TABLE, 64, use_npu=True)
    for op in graph.ops:
        if op.engine == Engine.NPU:
            assert "proj" in op.name or op.name == "lm_head"
        if "attention" in op.name or "norm" in op.name:
            assert op.engine == Engine.CPU


def test_decode_auto_engine_gain_increases_with_model_size():
    gains = {}
    for model_id in ("tinyllama-1.1b-q8", "llama-3-8b-q8"):
        spec = get_model(model_id)
        table = build_tensor_table(spec)
        cpu = total_time(build_decode_step_graph(spec, table, 128, use_npu=False, platform=PLATFORM))
        auto = total_time(build_decode_step_graph(spec, table, 128, use_npu="auto", platform=PLATFORM))
        gains[model_id] = cpu / auto - 1.0
    # Paper §7.1.2: decode gains are modest, and bandwidth-bound decode
    # benefits large models more than small ones.
    assert 0.0 <= gains["tinyllama-1.1b-q8"] < 0.05
    assert 0.10 < gains["llama-3-8b-q8"] < 0.30


def test_decode_npu_speedup_anchor_1_3x():
    # Raw NPU-vs-CPU bandwidth ratio shows through for big matmuls.
    assert PLATFORM.npu.mem_bandwidth / PLATFORM.cpu.mem_bandwidth == pytest.approx(1.3, rel=0.01)


def test_auto_requires_platform():
    with pytest.raises(ConfigurationError):
        build_prefill_graph(SPEC, TABLE, 8, use_npu="auto")


def test_zero_token_prompt_rejected():
    with pytest.raises(ConfigurationError):
        build_prefill_graph(SPEC, TABLE, 0)


def test_executor_runs_graph_on_sim_clock():
    sim = Simulator()
    cpu = Resource(sim, capacity=1, priority=True)
    backend = DirectNPUBackend(sim, PLATFORM)
    executor = GraphExecutor(sim, PLATFORM, cpu, backend)
    graph = build_prefill_graph(SPEC, TABLE, 32, use_npu=True)

    proc = sim.process(executor.execute(graph))
    sim.run_until(proc)
    assert sim.now == pytest.approx(total_time(graph), rel=1e-6)
    assert executor.cpu_busy_time > 0
    assert executor.npu_wait_time > 0


def test_executor_through_ree_driver_contends_for_npu():
    sim = Simulator()
    board = Board(sim, PLATFORM)
    driver = REENPUDriver(sim, board)
    cpu = Resource(sim, capacity=1, priority=True)
    ctx = AddrRange(0, 4096)
    executor = GraphExecutor(sim, PLATFORM, cpu, REEDriverNPUBackend(driver, ctx))
    graph = build_prefill_graph(get_model("tinyllama-1.1b-q8"),
                                build_tensor_table(get_model("tinyllama-1.1b-q8")),
                                32, use_npu=True)
    proc = sim.process(executor.execute(graph))
    sim.run_until(proc)
    assert driver.jobs_launched == sum(1 for op in graph.ops if op.engine == Engine.NPU)


def test_decode_loop_grows_kv_and_counts_tokens():
    sim = Simulator()
    cpu = Resource(sim, capacity=1, priority=True)
    executor = GraphExecutor(sim, PLATFORM, cpu, DirectNPUBackend(sim, PLATFORM))
    spec = get_model("tinyllama-1.1b-q8")
    table = build_tensor_table(spec)
    kv = KVCache(spec, capacity_tokens=256)
    kv.init_prompt(128)

    proc = sim.process(decode_tokens(executor, spec, table, kv, 8, use_npu="auto"))
    result = sim.run_until(proc)
    assert len(result.token_ids) == 8
    assert len(result.step_times) == 8
    assert kv.tokens == 136
    assert result.tokens_per_second > 0
    # Later steps are (weakly) slower: attention reads a longer KV cache.
    assert result.step_times[-1] >= result.step_times[0]


def test_decode_deterministic_tokens():
    from repro.llm import sample_token

    a = [sample_token("m", i, 32000) for i in range(5)]
    b = [sample_token("m", i, 32000) for i in range(5)]
    assert a == b
    assert len(set(a)) > 1
