"""Tests for tokenizer, KV cache, and framework checkpointing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RK3588, MiB, TimingSpec
from repro.crypto import derive_key
from repro.errors import ConfigurationError, IntegrityError, OutOfMemory
from repro.hw import Board
from repro.llm import KVCache, Tokenizer, get_model
from repro.llm.checkpoint import (
    checkpoint_path,
    cold_init,
    restore_checkpoint,
    save_checkpoint,
)
from repro.ree.filesystem import FileSystem
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------
def test_encode_decode_roundtrip():
    tok = Tokenizer("m", 32000)
    text = "Summarize the following dialogue , please !"
    ids = tok.encode(text)
    assert ids[0] == 1  # BOS
    assert tok.decode(ids) == text


def test_token_count_scales_with_words():
    tok = Tokenizer("m", 32000)
    short = tok.count("one two three")
    long = tok.count(" ".join("word%d" % i for i in range(100)))
    assert long > short
    assert long == 101  # BOS + 100 words


def test_same_text_same_ids():
    tok = Tokenizer("m", 32000)
    assert tok.encode("hello world") == tok.encode("hello world")


def test_vocab_bound_respected():
    tok = Tokenizer("m", 500)
    ids = tok.encode(" ".join("w%d" % i for i in range(200)))
    assert all(0 <= i < 500 for i in ids)


def test_tiny_vocab_rejected():
    with pytest.raises(ConfigurationError):
        Tokenizer("m", 4)


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), max_size=50))
@settings(max_examples=40, deadline=None)
def test_tokenizer_roundtrips_word_text(word):
    tok = Tokenizer("m", 32000)
    if not word:
        return
    assert tok.decode(tok.encode(word)) == word


# ---------------------------------------------------------------------------
# KV cache
# ---------------------------------------------------------------------------
def test_kv_growth_and_overflow():
    spec = get_model("tinyllama-1.1b-q8")
    kv = KVCache(spec, capacity_tokens=10)
    kv.init_prompt(8)
    assert kv.bytes_used == spec.kv_bytes(8)
    kv.append_token()
    kv.append_token()
    with pytest.raises(OutOfMemory):
        kv.append_token()
    kv.reset()
    assert kv.tokens == 0


def test_kv_prompt_too_long_rejected():
    spec = get_model("tinyllama-1.1b-q8")
    kv = KVCache(spec, capacity_tokens=10)
    with pytest.raises(OutOfMemory):
        kv.init_prompt(11)


# ---------------------------------------------------------------------------
# checkpoint
# ---------------------------------------------------------------------------
@pytest.fixture
def fs_sim():
    sim = Simulator()
    board = Board(sim, RK3588.with_memory(16 * MiB))
    return sim, FileSystem(sim, board.flash)


def test_checkpoint_save_restore_roundtrip(fs_sim):
    sim, fs = fs_sim
    timing = TimingSpec()
    key = derive_key(b"p", "m")

    def flow():
        yield from save_checkpoint(sim, timing, fs, "m", key, n_tensors=42)
        state = yield from restore_checkpoint(sim, timing, fs, "m", key)
        return state

    proc = sim.process(flow())
    state = sim.run_until(proc)
    assert state["n_tensors"] == 42
    assert state["initialized"] is True


def test_checkpoint_restore_is_much_cheaper_than_cold_init(fs_sim):
    sim, fs = fs_sim
    timing = TimingSpec()
    key = derive_key(b"p", "m")

    def flow():
        yield from save_checkpoint(sim, timing, fs, "m", key, n_tensors=1)
        t0 = sim.now
        yield from restore_checkpoint(sim, timing, fs, "m", key)
        restore_time = sim.now - t0
        t0 = sim.now
        yield from cold_init(sim, timing)
        cold_time = sim.now - t0
        return restore_time, cold_time

    proc = sim.process(flow())
    restore_time, cold_time = sim.run_until(proc)
    assert cold_time == pytest.approx(timing.framework_init)
    assert restore_time < cold_time / 5


def test_checkpoint_tamper_detected(fs_sim):
    sim, fs = fs_sim
    timing = TimingSpec()
    key = derive_key(b"p", "m")

    def flow():
        yield from save_checkpoint(sim, timing, fs, "m", key, n_tensors=1)
        fs.tamper_hook = lambda path, offset, data: b"\xff" + data[1:]
        yield from restore_checkpoint(sim, timing, fs, "m", key)

    proc = sim.process(flow())
    with pytest.raises(IntegrityError):
        sim.run_until(proc)


def test_checkpoint_wrong_key_detected(fs_sim):
    sim, fs = fs_sim
    timing = TimingSpec()

    def flow():
        yield from save_checkpoint(sim, timing, fs, "m", derive_key(b"p", "right"), n_tensors=1)
        yield from restore_checkpoint(sim, timing, fs, "m", derive_key(b"p", "wrong"))

    proc = sim.process(flow())
    with pytest.raises(IntegrityError):
        sim.run_until(proc)
