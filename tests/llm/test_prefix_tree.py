"""Shared-prefix KV reuse: the PrefixTree over a refcounted block pool.

Covers the content-addressed key scheme (kept in lockstep with
``analysis.prefix_share``), whole-block hit taking by reference,
copy-on-write at the divergence point, adopt-in-place of exclusively
cached tails, publish-on-success semantics, LRU eviction that skips
referenced blocks, the admission probe, and the strict accounting
satellites of the same PR (reservation underflow and ``init_prompt``
re-entry raise instead of clamping).
"""

import pytest

from repro.errors import ConfigurationError, OutOfMemory
from repro.llm import TINYLLAMA, KVBlockPool, KVCache, PagedKVCache, PromptSpec
from repro.llm.kv_cache import PrefixTree

B = 16  # block_tokens everywhere in this file


def make(total_blocks=64):
    pool = KVBlockPool(TINYLLAMA, B, total_blocks)
    tree = PrefixTree(pool)
    return pool, tree


def shared_init(pool, tree, spec, owner):
    kv = PagedKVCache(pool, owner=owner)
    result = kv.init_prompt_shared(spec, tree)
    return kv, result


# ----------------------------------------------------------------------
# key scheme (analyzer parity)
# ----------------------------------------------------------------------
def test_keys_mirror_the_offline_analyzer():
    pool, tree = make()
    assert tree.prefix_key("acme/p0", 3) == ("p", TINYLLAMA.model_id, "acme/p0", 3)
    assert PrefixTree.session_key("acme/s000001", 2) == ("s", "acme/s000001", 2)


def test_tree_attaches_to_its_pool():
    pool, tree = make()
    assert pool.tree is tree
    other = KVBlockPool(TINYLLAMA, B, 4)
    kv = PagedKVCache(other, owner="t/r1")
    with pytest.raises(ConfigurationError):
        kv.init_prompt_shared(PromptSpec(new_tokens=8), tree)


# ----------------------------------------------------------------------
# whole-block prefix hits
# ----------------------------------------------------------------------
def test_second_request_hits_published_prefix_blocks():
    pool, tree = make()
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=3 * B, session_id="a/s1",
                      new_tokens=B)
    first, r1 = shared_init(pool, tree, spec, "a/r1")
    assert r1.hit_tokens == 0 and r1.miss_tokens == spec.prompt_tokens
    first.publish(tree)
    first.release()
    # The prefix (and the fully-new session block) stay cached, refless.
    assert pool.cached_blocks == 4 and pool.used_blocks == 4

    spec2 = PromptSpec(prefix_id="a/p0", prefix_tokens=3 * B, session_id="a/s2",
                       new_tokens=B)
    second, r2 = shared_init(pool, tree, spec2, "a/r2")
    assert r2.prefix_hit_tokens == 3 * B
    assert r2.hit_blocks == 3
    assert r2.miss_tokens == B  # only the private session block computes
    # Three blocks are shared (ref taken, no fresh allocation).
    assert pool.shared_saved_blocks == 0  # refs == blocks: tree residency is not a ref
    assert pool.active_blocks == 4
    pool.check_conservation()
    second.release()
    pool.check_conservation()


def test_shared_block_refcounts_across_concurrent_holders():
    pool, tree = make()
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=2 * B, session_id="a/s1",
                      new_tokens=B)
    seed, _ = shared_init(pool, tree, spec, "a/r1")
    seed.publish(tree)
    holders = []
    for n in range(3):
        spec_n = PromptSpec(prefix_id="a/p0", prefix_tokens=2 * B,
                            session_id="a/s%d" % (n + 2), new_tokens=B)
        holders.append(shared_init(pool, tree, spec_n, "a/r%d" % (n + 2))[0])
    # 1 seed + 3 holders hold the 2 prefix blocks; each also owns 1
    # private session block: 2 shared + 4 private = 6 physical blocks.
    assert pool.used_blocks == 6
    assert pool.total_refs == 2 * 4 + 4
    assert pool.shared_saved_blocks == 6  # 3 extra refs on each prefix block
    pool.check_conservation()
    seed.release()
    for kv in holders:
        kv.release()
        pool.check_conservation()
    # Published blocks (2 prefix + the seed's full session block) stay
    # cached for the next request.
    assert pool.active_blocks == 0 and pool.cached_blocks == 3


def test_prefix_pad_block_is_private_and_wasted_tokens_tracked():
    pool, tree = make()
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=2 * B + 4,
                      session_id="a/s1", new_tokens=B)
    kv, result = shared_init(pool, tree, spec, "a/r1")
    # 2 shareable prefix blocks + 1 pad + 1 session block.
    assert len(kv.block_ids) == 4
    assert kv.waste_tokens == B - 4
    kv.publish(tree)
    # The pad block is never published (its KV depends on what follows).
    assert len(tree) == 3
    kv.release()


# ----------------------------------------------------------------------
# session stream: replay hits and COW at the divergence point
# ----------------------------------------------------------------------
def test_session_replay_hits_only_inside_context():
    pool, tree = make()
    turn1 = PromptSpec(session_id="a/s1", new_tokens=2 * B)
    kv1, r1 = shared_init(pool, tree, turn1, "a/r1")
    kv1.publish(tree)
    kv1.release()
    # Turn 2 replays turn 1's stream as context and adds new tokens.
    turn2 = PromptSpec(session_id="a/s1", context_tokens=2 * B, new_tokens=2 * B)
    kv2, r2 = shared_init(pool, tree, turn2, "a/r2")
    assert r2.session_hit_tokens == 2 * B  # the replayed span
    assert r2.miss_tokens == 2 * B  # this turn's new content
    kv2.publish(tree)
    kv2.release()
    pool.check_conservation()


def test_partial_tail_adopted_in_place_when_exclusively_cached():
    pool, tree = make()
    turn1 = PromptSpec(session_id="a/s1", new_tokens=B + 6)
    kv1, _ = shared_init(pool, tree, turn1, "a/r1")
    kv1.publish(tree)
    kv1.release()
    tail_block = tree.peek(PrefixTree.session_key("a/s1", 1))[0]
    assert pool.refcount(tail_block) == 0  # exclusively cached
    turn2 = PromptSpec(session_id="a/s1", context_tokens=B + 6, new_tokens=B - 6)
    kv2, r2 = shared_init(pool, tree, turn2, "a/r2")
    # The 6 valid tail tokens came back without a copy: adopt in place.
    assert r2.cow_tokens == 6 and r2.cow_blocks == 1
    assert pool.cows == 0
    assert tail_block in kv2.block_ids
    kv2.publish(tree)
    # Republished under the same key, now covering the full block.
    assert tree.peek(PrefixTree.session_key("a/s1", 1))[1] == B
    kv2.release()
    pool.check_conservation()


def test_partial_tail_copies_on_write_when_referenced():
    pool, tree = make()
    turn1 = PromptSpec(session_id="a/s1", new_tokens=B + 6)
    kv1, _ = shared_init(pool, tree, turn1, "a/r1")
    kv1.publish(tree)  # kv1 still holds its blocks (still decoding)
    tail_block = tree.peek(PrefixTree.session_key("a/s1", 1))[0]
    assert pool.refcount(tail_block) == 1
    turn2 = PromptSpec(session_id="a/s1", context_tokens=B + 6, new_tokens=B - 6)
    kv2, r2 = shared_init(pool, tree, turn2, "a/r2")
    assert r2.cow_tokens == 6
    assert pool.cows == 1
    assert tail_block not in kv2.block_ids  # diverged into a private copy
    pool.check_conservation()
    kv1.release()
    kv2.release()
    pool.check_conservation()


# ----------------------------------------------------------------------
# publish-on-success
# ----------------------------------------------------------------------
def test_failed_attempt_does_not_poison_the_tree():
    pool, tree = make()
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=2 * B, session_id="a/s1",
                      new_tokens=B)
    kv, _ = shared_init(pool, tree, spec, "a/r1")
    kv.release()  # faulted attempt: released before publish
    kv.publish(tree)
    assert len(tree) == 0
    assert pool.used_blocks == 0
    pool.check_conservation()


def test_probe_predicts_the_taken_hits():
    pool, tree = make()
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=3 * B, session_id="a/s1",
                      new_tokens=2 * B)
    seed, _ = shared_init(pool, tree, spec, "a/r1")
    seed.publish(tree)
    seed.release()
    repeat = PromptSpec(prefix_id="a/p0", prefix_tokens=3 * B, session_id="a/s1",
                        context_tokens=2 * B, new_tokens=B)
    predicted = tree.probe(repeat)
    kv, result = shared_init(pool, tree, repeat, "a/r2")
    assert predicted == result.hit_blocks == 5
    kv.release()


# ----------------------------------------------------------------------
# eviction under pressure
# ----------------------------------------------------------------------
def test_allocation_evicts_lru_cached_blocks_but_never_referenced_ones():
    pool, tree = make(total_blocks=4)
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=2 * B, session_id="a/s1",
                      new_tokens=B)
    kv1, _ = shared_init(pool, tree, spec, "a/r1")
    kv1.publish(tree)
    kv1.release()
    assert pool.free_blocks == 1 and pool.cached_blocks == 3
    # A 3-block private prompt must evict 2 cached blocks (LRU first).
    kv2 = PagedKVCache(pool, owner="b/r2")
    kv2.init_prompt(3 * B)
    assert tree.evictions == 2
    assert pool.cached_blocks == 1
    pool.check_conservation()
    # With everything referenced or resident and nothing evictable left,
    # exhaustion still raises.
    kv3 = PagedKVCache(pool, owner="b/r3")
    with pytest.raises(OutOfMemory):
        kv3.init_prompt(2 * B)
    kv2.release()
    pool.check_conservation()


def test_flush_drops_residency_but_not_live_references():
    pool, tree = make()
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=2 * B, session_id="a/s1",
                      new_tokens=B)
    kv, _ = shared_init(pool, tree, spec, "a/r1")
    kv.publish(tree)
    dropped = tree.flush()
    assert dropped == 3 and len(tree) == 0
    # The live holder keeps its blocks; only the cached flag went.
    assert pool.active_blocks == 3 and pool.cached_blocks == 0
    pool.check_conservation()
    kv.release()
    assert pool.used_blocks == 0


def test_can_admit_counts_cached_blocks_as_headroom():
    pool, tree = make(total_blocks=4)
    spec = PromptSpec(prefix_id="a/p0", prefix_tokens=4 * B, session_id="a/s1")
    kv, _ = shared_init(pool, tree, spec, "a/r1")
    kv.publish(tree)
    kv.release()
    assert pool.free_blocks == 0 and pool.cached_blocks == 4
    assert pool.can_admit(4)  # evictable residency is headroom
    pool.reserve(4, owner="b/r2")
    assert not pool.can_admit(1)
    pool.cancel_reservation(4, owner="b/r2")


# ----------------------------------------------------------------------
# strict accounting satellites
# ----------------------------------------------------------------------
def test_cancel_reservation_underflow_raises():
    pool, _ = make()
    pool.reserve(2, owner="t/r1")
    with pytest.raises(ConfigurationError):
        pool.cancel_reservation(3, owner="t/r1")
    with pytest.raises(ConfigurationError):
        pool.cancel_reservation(-1, owner="t/r1")
    pool.cancel_reservation(2, owner="t/r1")
    assert pool.reserved == 0


def test_alloc_from_reservation_without_hold_raises():
    pool, _ = make()
    with pytest.raises(ConfigurationError):
        pool.alloc_block(from_reservation=True, owner="t/r1")
    pool.check_conservation()  # the failed alloc left nothing behind


def test_init_prompt_reentry_raises_on_both_layouts():
    kv = KVCache(TINYLLAMA, 256)
    kv.init_prompt(32)
    with pytest.raises(ConfigurationError):
        kv.init_prompt(16)
    kv.reset()
    kv.init_prompt(16)  # legal again after reset

    pool, tree = make()
    paged = PagedKVCache(pool, owner="t/r1")
    paged.init_prompt(32)
    with pytest.raises(ConfigurationError):
        paged.init_prompt(16)
    with pytest.raises(ConfigurationError):
        paged.init_prompt_shared(PromptSpec(new_tokens=16), tree)
    paged.release()
    with pytest.raises(ConfigurationError):
        paged.init_prompt(16)  # released caches stay dead


def test_release_of_unheld_reference_raises():
    pool, _ = make()
    kv = PagedKVCache(pool, owner="t/r1")
    kv.init_prompt(B)
    block = kv.block_ids[0]
    with pytest.raises(ConfigurationError):
        pool.release_block(block, parked=True)  # no parked ref exists
    kv.release()
    with pytest.raises(ConfigurationError):
        pool.release_block(block)  # already freed
