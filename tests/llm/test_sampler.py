"""Tests for the deterministic sampler."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.llm.sampler import Sampler, SamplerConfig


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SamplerConfig(temperature=0)
    with pytest.raises(ConfigurationError):
        SamplerConfig(top_k=-1)
    with pytest.raises(ConfigurationError):
        Sampler("m", 10)


def test_generation_deterministic():
    a = Sampler("m", 32000).generate(16, [1, 2, 3])
    b = Sampler("m", 32000).generate(16, [1, 2, 3])
    assert a == b
    assert all(0 <= t < 32000 for t in a)


def test_context_changes_output():
    s = Sampler("m", 32000)
    assert s.generate(8, [1]) != s.generate(8, [2])


def test_greedy_picks_argmax():
    s = Sampler("m", 32000, SamplerConfig(greedy=True))
    ids, logits = s.logits_window(0, [1])
    assert s.sample(0, [1]) == ids[int(np.argmax(logits))]


def test_top_k_restricts_candidates():
    s = Sampler("m", 32000, SamplerConfig(top_k=3))
    ids, logits = s.logits_window(0, [5])
    allowed = set(int(ids[i]) for i in np.argsort(logits)[-3:])
    assert s.sample(0, [5]) in allowed


def test_low_temperature_approaches_greedy():
    cold = Sampler("m", 32000, SamplerConfig(temperature=0.01))
    greedy = Sampler("m", 32000, SamplerConfig(greedy=True))
    matches = sum(
        cold.sample(step, [9]) == greedy.sample(step, [9]) for step in range(20)
    )
    assert matches >= 17


def test_high_temperature_diversifies():
    hot = Sampler("m", 32000, SamplerConfig(temperature=8.0))
    tokens = {hot.sample(step, [9]) for step in range(30)}
    assert len(tokens) > 15
