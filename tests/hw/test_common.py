"""Unit tests for shared hardware vocabulary (AddrRange, World, Master)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw import AddrRange, Master, World


def test_world_security():
    assert World.SECURE.is_secure
    assert not World.NONSECURE.is_secure


def test_master_constructors():
    cpu = Master.cpu(World.SECURE)
    dev = Master.device("npu", World.NONSECURE)
    assert not cpu.is_device and dev.is_device
    assert cpu.world.is_secure and not dev.world.is_secure


def test_addr_range_basics():
    rng = AddrRange(0x1000, 0x100)
    assert rng.end == 0x1100
    assert rng.contains(0x1000) and rng.contains(0x10FF)
    assert not rng.contains(0x1100)
    assert not rng.empty
    assert AddrRange(5, 0).empty


def test_addr_range_negative_rejected():
    with pytest.raises(ConfigurationError):
        AddrRange(-1, 10)
    with pytest.raises(ConfigurationError):
        AddrRange(0, -1)


def test_covers_and_overlaps():
    outer = AddrRange(0, 100)
    inner = AddrRange(10, 20)
    apart = AddrRange(200, 10)
    adjacent = AddrRange(100, 10)
    assert outer.covers(inner) and not inner.covers(outer)
    assert outer.overlaps(inner)
    assert not outer.overlaps(apart)
    assert not outer.overlaps(adjacent)  # half-open ranges


def test_intersection():
    a = AddrRange(0, 100)
    b = AddrRange(50, 100)
    inter = a.intersection(b)
    assert (inter.base, inter.size) == (50, 50)
    assert a.intersection(AddrRange(500, 10)).empty


@given(
    base_a=st.integers(0, 1000), size_a=st.integers(0, 1000),
    base_b=st.integers(0, 1000), size_b=st.integers(0, 1000),
)
@settings(max_examples=80, deadline=None)
def test_property_overlap_iff_nonempty_intersection(base_a, size_a, base_b, size_b):
    a = AddrRange(base_a, size_a)
    b = AddrRange(base_b, size_b)
    assert a.overlaps(b) == (not a.intersection(b).empty)
    assert a.overlaps(b) == b.overlaps(a)  # symmetric


@given(
    base=st.integers(0, 1000), size=st.integers(1, 1000),
    inner_off=st.integers(0, 999), inner_size=st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_property_covers_implies_contains_endpoints(base, size, inner_off, inner_size):
    outer = AddrRange(base, size)
    inner = AddrRange(base + inner_off, inner_size)
    if outer.covers(inner) and not inner.empty:
        assert outer.contains(inner.base)
        assert outer.contains(inner.end - 1)
