"""Unit tests for the NPU device: launch, DMA filtering, IRQ delivery."""

import pytest

from repro.config import PAGE_SIZE, RK3588, NPUSpec
from repro.errors import DeviceError, MMIODenied
from repro.hw import AddrRange, Board, NPUJob, World
from repro.sim import Simulator

S = World.SECURE
N = World.NONSECURE
PG = PAGE_SIZE


@pytest.fixture
def board():
    sim = Simulator()
    return Board(sim, RK3588.with_memory(256 * PG))


def make_job(duration=0.01, base=0):
    return NPUJob(
        duration=duration,
        commands=AddrRange(base, 64),
        io_pagetable=AddrRange(base + PG, 64),
        inputs=[AddrRange(base + 2 * PG, 128)],
        outputs=[AddrRange(base + 3 * PG, 32)],
    )


def test_job_runs_and_raises_irq_to_ree(board):
    sim = board.sim
    done = []
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: done.append(job))
    board.memory.cpu_write(2 * PG, b"input-bytes", N)
    job = board.npu.launch(N, make_job(duration=0.5))
    assert board.npu.busy
    sim.run()
    assert done == [job]
    assert job.faulted is None
    assert job.completed_at == pytest.approx(0.5 + board.spec.npu.job_launch_latency)
    assert not board.npu.busy
    # Output buffer really written.
    out = board.memory.cpu_read(3 * PG, 32, N)
    assert out != b"\x00" * 32


def test_output_is_deterministic_function_of_input(board):
    sim = board.sim
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: None)
    board.memory.cpu_write(2 * PG, b"same-input", N)
    board.npu.launch(N, make_job())
    sim.run()
    first = board.memory.cpu_read(3 * PG, 32, N)
    board.npu.launch(N, make_job())
    sim.run()
    assert board.memory.cpu_read(3 * PG, 32, N) == first


def test_busy_npu_rejects_second_launch(board):
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: None)
    board.npu.launch(N, make_job(duration=1.0))
    with pytest.raises(DeviceError):
        board.npu.launch(N, make_job())
    board.sim.run()
    board.npu.launch(N, make_job())  # fine once idle
    board.sim.run()


def test_secure_npu_blocks_nonsecure_launch(board):
    board.tzpc.set_secure(S, board.npu.name, True)
    with pytest.raises(MMIODenied):
        board.npu.launch(N, make_job())
    board.gic.attach_handler(S, board.npu.irq, lambda irq, job: None)
    board.gic.set_group(S, board.npu.irq, S)
    board.npu.launch(S, make_job())
    board.sim.run()
    assert board.npu.jobs_completed == 1


def test_nonsecure_job_input_dma_to_secure_memory_faults(board):
    board.tzasc.configure(S, 0, 2 * PG, PG)  # the input buffer is now secure
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: None)
    job = board.npu.launch(N, make_job())
    board.sim.run()
    assert job.faulted is not None and job.faulted.startswith("input:")
    assert board.npu.jobs_faulted == 1


def test_nonsecure_job_output_dma_to_secure_memory_faults(board):
    board.tzasc.configure(S, 0, 3 * PG, PG)  # the *output* buffer is secure
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: None)
    job = board.npu.launch(N, make_job())
    board.sim.run()
    assert job.faulted is not None and job.faulted.startswith("output:")
    # Secure memory was not written.
    assert board.memory.cpu_read(3 * PG, 32, S) == b"\x00" * 32


def test_wait_idle_event(board):
    sim = board.sim
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: None)
    times = []

    def waiter():
        yield board.npu.wait_idle()  # idle now -> immediate
        times.append(sim.now)
        board.npu.launch(N, make_job(duration=0.2))
        yield board.npu.wait_idle()
        times.append(sim.now)

    done = sim.process(waiter())
    sim.run_until(done)
    assert times[0] == 0.0
    assert times[1] == pytest.approx(0.2 + board.spec.npu.job_launch_latency)


def test_power_off_rejects_launch_and_busy_poweroff(board):
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: None)
    board.npu.set_power(False)
    with pytest.raises(DeviceError):
        board.npu.launch(N, make_job())
    board.npu.set_power(True)
    board.npu.launch(N, make_job(duration=1.0))
    with pytest.raises(DeviceError):
        board.npu.set_power(False)
    board.sim.run()


def test_busy_time_accumulates(board):
    board.gic.attach_handler(N, board.npu.irq, lambda irq, job: None)

    def run_two():
        board.npu.launch(N, make_job(duration=0.3))
        yield board.npu.wait_idle()
        board.npu.launch(N, make_job(duration=0.2))
        yield board.npu.wait_idle()

    done = board.sim.process(run_two())
    board.sim.run_until(done)
    assert board.npu.busy_time == pytest.approx(0.5)
    assert board.npu.jobs_completed == 2
