"""Unit tests for the TZPC (MMIO security) and GIC (interrupt routing)."""

import pytest

from repro.errors import ConfigurationError, MMIODenied, SecurityViolation
from repro.hw import GIC, TZPC, World

S = World.SECURE
N = World.NONSECURE


# ---------------------------------------------------------------------------
# TZPC
# ---------------------------------------------------------------------------
def test_tzpc_default_nonsecure_device_open_to_all():
    tzpc = TZPC()
    tzpc.register_device("npu")
    tzpc.check_mmio("npu", N)
    tzpc.check_mmio("npu", S)


def test_tzpc_secure_device_blocks_nonsecure_mmio():
    tzpc = TZPC()
    tzpc.register_device("npu")
    tzpc.set_secure(S, "npu", True)
    with pytest.raises(MMIODenied):
        tzpc.check_mmio("npu", N)
    tzpc.check_mmio("npu", S)
    tzpc.set_secure(S, "npu", False)
    tzpc.check_mmio("npu", N)


def test_tzpc_programming_requires_secure_world():
    tzpc = TZPC()
    tzpc.register_device("npu")
    with pytest.raises(SecurityViolation):
        tzpc.set_secure(N, "npu", True)


def test_tzpc_unknown_device_rejected():
    tzpc = TZPC()
    with pytest.raises(ConfigurationError):
        tzpc.check_mmio("ghost", N)
    with pytest.raises(ConfigurationError):
        tzpc.set_secure(S, "ghost", True)


def test_tzpc_double_registration_rejected():
    tzpc = TZPC()
    tzpc.register_device("npu")
    with pytest.raises(ConfigurationError):
        tzpc.register_device("npu")


# ---------------------------------------------------------------------------
# GIC
# ---------------------------------------------------------------------------
def test_gic_delivers_to_current_group_owner():
    gic = GIC()
    gic.register_line(64, N)
    seen = []
    gic.attach_handler(N, 64, lambda irq, payload: seen.append(("ree", payload)))
    gic.attach_handler(S, 64, lambda irq, payload: seen.append(("tee", payload)))

    assert gic.raise_irq(64, "a") == N
    gic.set_group(S, 64, S)
    assert gic.raise_irq(64, "b") == S
    gic.set_group(S, 64, N)
    assert gic.raise_irq(64, "c") == N
    assert seen == [("ree", "a"), ("tee", "b"), ("ree", "c")]


def test_gic_grouping_requires_secure_world():
    gic = GIC()
    gic.register_line(64, N)
    with pytest.raises(SecurityViolation):
        gic.set_group(N, 64, S)


def test_gic_unhandled_interrupt_dropped():
    gic = GIC()
    gic.register_line(64, N)
    assert gic.raise_irq(64) is None
    assert gic.dropped == 1


def test_gic_detach_handler():
    gic = GIC()
    gic.register_line(7, N)
    seen = []
    gic.attach_handler(N, 7, lambda irq, payload: seen.append(payload))
    gic.raise_irq(7, 1)
    gic.detach_handler(N, 7)
    gic.raise_irq(7, 2)
    assert seen == [1]
    assert gic.dropped == 1


def test_gic_unknown_line_rejected():
    gic = GIC()
    with pytest.raises(ConfigurationError):
        gic.raise_irq(99)
    with pytest.raises(ConfigurationError):
        gic.attach_handler(N, 99, lambda irq, payload: None)


def test_gic_delivery_counters():
    gic = GIC()
    gic.register_line(1, N)
    gic.attach_handler(N, 1, lambda irq, payload: None)
    for _ in range(3):
        gic.raise_irq(1)
    assert gic.delivered[N] == 3
    assert gic.delivered[S] == 0
