"""Unit tests for the EL3 secure monitor SMC path."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import SecureMonitor, World
from repro.sim import Simulator


def test_smc_dispatches_plain_handler_and_charges_latency():
    sim = Simulator()
    monitor = SecureMonitor(sim, smc_latency=1e-3)
    monitor.register("tee.echo", lambda x: x * 2)

    def caller():
        result = yield from monitor.smc(World.NONSECURE, "tee.echo", 21)
        return result

    proc = sim.process(caller())
    assert sim.run_until(proc) == 42
    assert sim.now == pytest.approx(1e-3)
    assert monitor.smc_count == 1
    assert monitor.smc_time == pytest.approx(1e-3)


def test_smc_generator_handler_consumes_time():
    sim = Simulator()
    monitor = SecureMonitor(sim, smc_latency=0.001)

    def handler(x):
        yield sim.timeout(0.5)
        return x + 1

    monitor.register("tee.slow", handler)

    def caller():
        result = yield from monitor.smc(World.NONSECURE, "tee.slow", 1)
        return result

    proc = sim.process(caller())
    assert sim.run_until(proc) == 2
    assert sim.now == pytest.approx(0.501)


def test_unknown_smc_function_rejected():
    sim = Simulator()
    monitor = SecureMonitor(sim)

    def caller():
        yield from monitor.smc(World.NONSECURE, "missing")

    proc = sim.process(caller())
    with pytest.raises(ConfigurationError):
        sim.run_until(proc)


def test_duplicate_registration_rejected():
    sim = Simulator()
    monitor = SecureMonitor(sim)
    monitor.register("f", lambda: None)
    with pytest.raises(ConfigurationError):
        monitor.register("f", lambda: None)
    monitor.unregister("f")
    monitor.register("f", lambda: 7)


def test_smc_count_accumulates_across_calls():
    sim = Simulator()
    monitor = SecureMonitor(sim, smc_latency=2e-6)
    monitor.register("noop", lambda: None)

    def caller():
        for _ in range(5):
            yield from monitor.smc(World.NONSECURE, "noop")

    proc = sim.process(caller())
    sim.run_until(proc)
    assert monitor.smc_count == 5
    assert sim.now == pytest.approx(10e-6)
