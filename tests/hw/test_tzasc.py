"""Unit tests for the TZASC region filter."""

import pytest

from repro.config import PAGE_SIZE
from repro.errors import AccessDenied, ConfigurationError, DMAViolation, SecurityViolation
from repro.hw import AddrRange, TZASC, World

S = World.SECURE
N = World.NONSECURE
PG = PAGE_SIZE


@pytest.fixture
def tzasc():
    return TZASC(region_slots=8)


def test_configure_requires_secure_world(tzasc):
    with pytest.raises(SecurityViolation):
        tzasc.configure(N, 0, 0, PG)


def test_unaligned_region_rejected(tzasc):
    with pytest.raises(ConfigurationError):
        tzasc.configure(S, 0, 100, PG)
    with pytest.raises(ConfigurationError):
        tzasc.configure(S, 0, 0, PG + 1)


def test_slot_bounds_checked(tzasc):
    with pytest.raises(ConfigurationError):
        tzasc.configure(S, 8, 0, PG)
    with pytest.raises(ConfigurationError):
        tzasc.configure(S, -1, 0, PG)


def test_nonsecure_cpu_blocked_from_secure_region(tzasc):
    tzasc.configure(S, 0, 4 * PG, 4 * PG)
    with pytest.raises(AccessDenied):
        tzasc.check_cpu(AddrRange(5 * PG, 16), N)
    # Secure CPU passes.
    tzasc.check_cpu(AddrRange(5 * PG, 16), S)
    # Non-secure access outside the region passes.
    tzasc.check_cpu(AddrRange(0, PG), N)
    tzasc.check_cpu(AddrRange(8 * PG, PG), N)


def test_partial_overlap_still_blocked(tzasc):
    tzasc.configure(S, 0, 4 * PG, 2 * PG)
    # Access straddling the region boundary is denied.
    with pytest.raises(AccessDenied):
        tzasc.check_cpu(AddrRange(3 * PG, 2 * PG), N)


def test_region_overlap_rejected(tzasc):
    tzasc.configure(S, 0, 0, 4 * PG)
    with pytest.raises(ConfigurationError):
        tzasc.configure(S, 1, 2 * PG, 4 * PG)
    # Adjacent is fine.
    tzasc.configure(S, 1, 4 * PG, 4 * PG)


def test_resize_extends_and_shrinks_end(tzasc):
    tzasc.configure(S, 0, 0, 2 * PG)
    tzasc.resize(S, 0, 6 * PG)
    with pytest.raises(AccessDenied):
        tzasc.check_cpu(AddrRange(5 * PG, 8), N)
    tzasc.resize(S, 0, PG)
    tzasc.check_cpu(AddrRange(5 * PG, 8), N)  # now open again
    with pytest.raises(AccessDenied):
        tzasc.check_cpu(AddrRange(0, 8), N)


def test_resize_to_zero_opens_everything(tzasc):
    tzasc.configure(S, 0, 0, 4 * PG)
    tzasc.resize(S, 0, 0)
    tzasc.check_cpu(AddrRange(0, 4 * PG), N)


def test_resize_cannot_overlap_other_region(tzasc):
    tzasc.configure(S, 0, 0, 2 * PG)
    tzasc.configure(S, 1, 4 * PG, 2 * PG)
    with pytest.raises(ConfigurationError):
        tzasc.resize(S, 0, 6 * PG)


def test_disable_frees_slot(tzasc):
    tzasc.configure(S, 0, 0, 2 * PG)
    tzasc.disable(S, 0)
    tzasc.check_cpu(AddrRange(0, PG), N)
    with pytest.raises(ConfigurationError):
        tzasc.resize(S, 0, PG)


def test_dma_denied_by_default(tzasc):
    tzasc.configure(S, 0, 0, 4 * PG)
    with pytest.raises(DMAViolation):
        tzasc.check_dma(AddrRange(PG, 8), "npu")
    # Outside the region: any device passes.
    tzasc.check_dma(AddrRange(8 * PG, 8), "npu")


def test_dma_allowed_after_grant_and_revoked(tzasc):
    tzasc.configure(S, 0, 0, 4 * PG)
    tzasc.allow_device(S, 0, "npu")
    tzasc.check_dma(AddrRange(PG, 8), "npu")
    # A different device is still denied.
    with pytest.raises(DMAViolation):
        tzasc.check_dma(AddrRange(PG, 8), "gpu")
    tzasc.revoke_device(S, 0, "npu")
    with pytest.raises(DMAViolation):
        tzasc.check_dma(AddrRange(PG, 8), "npu")


def test_device_grant_requires_secure_world(tzasc):
    tzasc.configure(S, 0, 0, 4 * PG)
    with pytest.raises(SecurityViolation):
        tzasc.allow_device(N, 0, "npu")


def test_is_secure_and_ranges(tzasc):
    tzasc.configure(S, 2, 4 * PG, 2 * PG)
    assert tzasc.is_secure(4 * PG)
    assert tzasc.is_secure(5 * PG)
    assert not tzasc.is_secure(6 * PG)
    assert tzasc.secure_ranges() == [AddrRange(4 * PG, 2 * PG)]


def test_config_ops_counted(tzasc):
    assert tzasc.config_ops == 0
    tzasc.configure(S, 0, 0, PG)
    tzasc.resize(S, 0, 2 * PG)
    tzasc.allow_device(S, 0, "npu")
    tzasc.revoke_device(S, 0, "npu")
    tzasc.disable(S, 0)
    assert tzasc.config_ops == 5
