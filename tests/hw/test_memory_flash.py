"""Unit tests for physical memory (TZASC-filtered) and flash."""

import pytest

from repro.config import PAGE_SIZE, FlashSpec
from repro.errors import AccessDenied, ConfigurationError, DMAViolation, StorageError
from repro.hw import AddrRange, Flash, PhysicalMemory, TZASC, World
from repro.sim import Simulator

S = World.SECURE
N = World.NONSECURE
PG = PAGE_SIZE


@pytest.fixture
def mem():
    return PhysicalMemory(64 * PG)


def test_read_back_what_was_written(mem):
    mem.cpu_write(100, b"hello world", N)
    assert mem.cpu_read(100, 11, N) == b"hello world"


def test_unwritten_memory_reads_zero(mem):
    assert mem.cpu_read(0, 8, N) == b"\x00" * 8


def test_cross_page_write_and_read(mem):
    data = bytes(range(256)) * 40  # > 2 pages
    base = PG - 100
    mem.cpu_write(base, data, N)
    assert mem.cpu_read(base, len(data), N) == data


def test_out_of_bounds_rejected(mem):
    with pytest.raises(ConfigurationError):
        mem.cpu_read(64 * PG - 4, 8, N)
    with pytest.raises(ConfigurationError):
        mem.cpu_write(-1, b"x", N)


def test_secure_region_blocks_nonsecure_cpu(mem):
    mem.cpu_write(4 * PG, b"secret-weights", S)
    mem.tzasc.configure(S, 0, 4 * PG, 2 * PG)
    with pytest.raises(AccessDenied):
        mem.cpu_read(4 * PG, 14, N)
    with pytest.raises(AccessDenied):
        mem.cpu_write(4 * PG, b"tamper", N)
    assert mem.cpu_read(4 * PG, 14, S) == b"secret-weights"


def test_dma_filtered_by_device_grants(mem):
    mem.cpu_write(4 * PG, b"weights", S)
    mem.tzasc.configure(S, 0, 4 * PG, 2 * PG)
    with pytest.raises(DMAViolation):
        mem.dma_read(4 * PG, 7, "npu")
    mem.tzasc.allow_device(S, 0, "npu")
    assert mem.dma_read(4 * PG, 7, "npu") == b"weights"
    with pytest.raises(DMAViolation):
        mem.dma_write(4 * PG, b"evil", "rogue-device")


def test_scrub_zeroes_range(mem):
    mem.cpu_write(10, b"abcdef", S)
    mem.scrub(10, 6, S)
    assert mem.cpu_read(10, 6, S) == b"\x00" * 6


def test_scrub_respects_tzasc(mem):
    mem.tzasc.configure(S, 0, 0, PG)
    with pytest.raises(AccessDenied):
        mem.scrub(0, 16, N)


def test_memory_requires_page_multiple():
    with pytest.raises(ConfigurationError):
        PhysicalMemory(100)


# ---------------------------------------------------------------------------
# Flash
# ---------------------------------------------------------------------------
def test_flash_read_takes_bandwidth_time():
    sim = Simulator()
    flash = Flash(sim, FlashSpec(seq_read_bw=1000.0, read_latency=0.5))
    flash.provision("model.bin", b"x" * 2000)

    result = {}

    def proc():
        data = yield from flash.read("model.bin", 0, 2000)
        result["data"] = data

    done = sim.process(proc())
    sim.run_until(done)
    assert result["data"] == b"x" * 2000
    assert sim.now == pytest.approx(0.5 + 2.0)


def test_flash_concurrent_reads_share_bandwidth():
    sim = Simulator()
    flash = Flash(sim, FlashSpec(seq_read_bw=1000.0, read_latency=0.0))
    flash.provision("a", b"a" * 1000)
    flash.provision("b", b"b" * 1000)
    finish = {}

    def proc(name):
        yield from flash.read(name, 0, 1000)
        finish[name] = sim.now

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert finish["a"] == pytest.approx(2.0)
    assert finish["b"] == pytest.approx(2.0)


def test_flash_partial_read_and_bounds():
    sim = Simulator()
    flash = Flash(sim, FlashSpec())
    flash.provision("f", b"0123456789")

    def proc():
        data = yield from flash.read("f", 3, 4)
        return data

    done = sim.process(proc())
    assert sim.run_until(done) == b"3456"

    def bad():
        yield from flash.read("f", 8, 5)

    bad_proc = sim.process(bad())
    with pytest.raises(ConfigurationError):
        sim.run_until(bad_proc)


def test_flash_write_then_peek():
    sim = Simulator()
    flash = Flash(sim, FlashSpec())

    def proc():
        yield from flash.write("log", 0, b"hello")
        yield from flash.write("log", 5, b" world")

    done = sim.process(proc())
    sim.run_until(done)
    assert flash.peek("log") == b"hello world"
    assert flash.size("log") == 11


def test_flash_missing_blob_rejected():
    sim = Simulator()
    flash = Flash(sim, FlashSpec())
    # A missing blob is a runtime storage failure (retryable by a
    # hardened caller), not a configuration mistake.
    with pytest.raises(StorageError):
        flash.size("ghost")
