"""End-to-end tests for re-quantized model variants (Table 1 claim)."""

import pytest

from repro.core import TZLLM
from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA
from repro.llm.models import quantized_variant


def test_variant_derivation():
    q4 = quantized_variant(TINYLLAMA, 4)
    assert q4.model_id == "tinyllama-1.1b-q4"
    assert q4.quant_bits == 4
    assert q4.param_bytes == pytest.approx(TINYLLAMA.param_bytes / 2, rel=1e-6)
    assert quantized_variant(TINYLLAMA, 8) is TINYLLAMA
    with pytest.raises(ConfigurationError):
        quantized_variant(TINYLLAMA, 3)


def test_q4_runs_end_to_end_with_half_the_memory():
    q4 = quantized_variant(TINYLLAMA, 4)
    system8 = TZLLM(TINYLLAMA)
    system4 = TZLLM(q4)
    assert (
        system4.ta.plan.total_nominal_bytes
        < 0.55 * system8.ta.plan.total_nominal_bytes
    )
    for system in (system8, system4):
        system.run_infer(8, 0)
    rec8 = system8.run_infer(64, 4)
    rec4 = system4.run_infer(64, 4)
    # Half the bytes to restore: a visibly faster cold TTFT...
    assert rec4.ttft < 0.75 * rec8.ttft
    # ...and faster bandwidth-bound decode.
    assert rec4.decode_tokens_per_second > 1.5 * rec8.decode_tokens_per_second


def test_q4_security_machinery_identical():
    """Quantization width changes nothing about protection."""
    from repro.errors import AccessDenied
    from repro.hw import World

    q4 = quantized_variant(TINYLLAMA, 4)
    system = TZLLM(q4, cache_fraction=1.0)
    system.run_infer(8, 0)
    system.run_infer(16, 0)
    region = system.ta.params_region
    assert region.protected > 0
    with pytest.raises(AccessDenied):
        system.stack.board.memory.cpu_read(region.base_addr, 32, World.NONSECURE)
