"""Tests for the client-application session API."""

import pytest

from repro.core import TZLLM
from repro.core.client import ClientApp
from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA


@pytest.fixture(scope="module")
def app():
    system = TZLLM(TINYLLAMA, cache_fraction=0.5)
    system.run_infer(8, 0)  # cold start off the measured path
    return ClientApp(system)


def test_ask_returns_text_and_record(app):
    session = app.open_session()
    reply = session.ask_blocking("summarize my meeting notes please", max_new_tokens=8)
    assert reply.session_id == session.session_id
    assert len(reply.record.decode.token_ids) == 8
    assert reply.text  # decoded output text
    assert reply.ttft > 0
    assert reply.tokens_per_second > 0
    assert session.total_tokens_generated == 8


def test_prompt_length_comes_from_tokenizer(app):
    session = app.open_session()
    short = session.ask_blocking("hi", max_new_tokens=0)
    long = session.ask_blocking(" ".join(["word"] * 120), max_new_tokens=0)
    assert long.record.prompt_tokens > short.record.prompt_tokens
    assert long.record.prompt_tokens == 121  # BOS + 120 words


def test_concurrent_requests_serialize_in_arrival_order(app):
    sim = app.system.sim
    a = app.open_session()
    b = app.open_session()
    order = []

    def client(session, tag, delay):
        yield sim.timeout(delay)
        reply = yield from session.ask("request from %s" % tag, max_new_tokens=2)
        order.append((tag, reply.record.started_at))

    pa = sim.process(client(a, "a", 0.0))
    pb = sim.process(client(b, "b", 0.001))
    sim.run_until(pa)
    sim.run_until(pb)
    assert [tag for tag, _ in order] == ["a", "b"] or order[0][1] < order[1][1]
    assert app.queue_wait_time > 0  # b waited for a


def test_closed_session_rejects_requests(app):
    session = app.open_session()
    session.close()
    proc = app.system.sim.process(session.ask("hello"))
    with pytest.raises(ConfigurationError):
        app.system.sim.run_until(proc)


def test_negative_tokens_rejected(app):
    session = app.open_session()
    proc = app.system.sim.process(session.ask("hello", max_new_tokens=-1))
    with pytest.raises(ConfigurationError):
        app.system.sim.run_until(proc)


def test_request_accounting(app):
    served_before = app.requests_served
    session = app.open_session()
    session.ask_blocking("one", max_new_tokens=1)
    session.ask_blocking("two", max_new_tokens=1)
    assert app.requests_served == served_before + 2
    assert session.mean_ttft > 0


def test_reply_timestamps_and_e2e_latency(app):
    session = app.open_session()
    reply = session.ask_blocking("timing check", max_new_tokens=4)
    assert reply.arrived_at <= reply.dispatched_at < reply.finished_at
    assert reply.queue_wait == reply.dispatched_at - reply.arrived_at
    assert reply.e2e_latency == pytest.approx(reply.finished_at - reply.arrived_at)
    # End-to-end covers queue wait + invocation + prefill + decode, so it
    # strictly exceeds the TA-measured TTFT.
    assert reply.e2e_latency > reply.ttft > 0


def test_queue_wait_is_visible_on_concurrent_replies(app):
    sim = app.system.sim
    a = app.open_session()
    b = app.open_session()
    replies = {}

    def client(session, tag, delay):
        yield sim.timeout(delay)
        reply = yield from session.ask("from %s" % tag, max_new_tokens=2)
        replies[tag] = reply

    pa = sim.process(client(a, "a", 0.0))
    pb = sim.process(client(b, "b", 0.001))
    sim.run_until(pa)
    sim.run_until(pb)
    assert replies["a"].queue_wait == 0.0
    assert replies["b"].queue_wait > 0  # b arrived while a held the TA
    assert replies["b"].e2e_latency > replies["a"].e2e_latency


def test_client_tracer_records_gateway_spans():
    from repro.sim.trace import Tracer

    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    tracer = Tracer(system.sim)
    app = ClientApp(system, tracer=tracer)
    session = app.open_session()
    session.ask_blocking("trace me", max_new_tokens=2)
    assert "gateway" in tracer.lanes()
    names = {s.name for s in tracer.spans if s.lane == "gateway"}
    assert "queue r1" in names and "invoke r1" in names
    invoke = next(s for s in tracer.spans if s.name == "invoke r1")
    assert invoke.duration > 0
