"""Property-based tests on core invariants (hypothesis).

Three invariant families:

* the prefill pipeline never beats its own lower bound, always restores
  every byte exactly once, and terminates, for arbitrary model shapes,
  prompt lengths, cache fractions and scheduler configurations;
* the extend/shrink secure-memory state machine keeps
  ``protected <= allocated <= capacity`` and TZASC visibility consistent
  under arbitrary operation sequences;
* the frame database never double-owns a granule under random
  alloc/free/migrate interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MiB, RK3588, PAGE_SIZE
from repro.core import PipelineConfig, TZLLM
from repro.errors import AccessDenied, MemoryError_
from repro.hw import World
from repro.llm import ModelSpec

N = World.NONSECURE
S = World.SECURE


# ---------------------------------------------------------------------------
# pipeline invariants over random tiny models
# ---------------------------------------------------------------------------
def tiny_model(layers: int, hidden: int, vocab: int) -> ModelSpec:
    return ModelSpec(
        model_id="fuzz-%d-%d-%d" % (layers, hidden, vocab),
        display_name="Fuzz",
        n_layers=layers,
        hidden=hidden,
        intermediate=hidden * 3,
        n_heads=4,
        n_kv_heads=2,
        vocab=vocab,
    )


@given(
    layers=st.integers(min_value=1, max_value=6),
    hidden=st.sampled_from([64, 128, 256]),
    prompt=st.integers(min_value=1, max_value=96),
    cache_fraction=st.sampled_from([0.0, 0.3, 1.0]),
    pipelined=st.booleans(),
    preemptive=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_pipeline_invariants_random_models(
    layers, hidden, prompt, cache_fraction, pipelined, preemptive
):
    model = tiny_model(layers, hidden, 1024)
    system = TZLLM(
        model,
        max_tokens=256,
        cache_fraction=cache_fraction,
        pipeline_config=PipelineConfig(pipelined=pipelined, preemptive=preemptive),
    )
    system.run_infer(4, 0)  # cold start + establish cache
    record = system.run_infer(prompt, 0)
    pipe = record.pipeline
    # Terminates with a positive TTFT that respects the lower bound.
    assert record.ttft > 0
    assert pipe.ttft >= pipe.lower_bound * (1 - 1e-9)
    # Every non-cached byte restored exactly once.
    plan = system.ta.plan
    expected = plan.total_nominal_bytes - sum(
        g.nominal_bytes for g in plan.groups[: record.cached_groups]
    )
    assert pipe.loaded_bytes == expected
    # Memory book-keeping is consistent after release.
    region = system.ta.params_region
    assert 0 <= region.protected <= region.allocated <= region.capacity
    assert region.allocated == region.protected  # FILO discipline held


# ---------------------------------------------------------------------------
# extend/shrink state machine
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "protect", "shrink"]),
                  st.integers(min_value=1, max_value=4)),
        min_size=1,
        max_size=24,
    )
)
@settings(max_examples=25, deadline=None)
def test_secure_memory_state_machine(ops):
    from repro.stack import build_stack
    from repro.tee import TrustedApplication

    GRANULE = MiB
    stack = build_stack(
        spec=RK3588.with_memory(64 * MiB),
        granule=GRANULE,
        os_footprint=0,
        cma_regions={"r": 16 * MiB},
    )
    ta = TrustedApplication("fuzz")
    stack.tee_os.install_ta(ta)
    cma = stack.kernel.cma_regions["r"]
    region = stack.tee_os.create_secure_region(
        ta, "r", "r", cma.base_addr, cma.size_bytes, GRANULE
    )

    def run(gen):
        proc = stack.sim.process(gen)
        return stack.sim.run_until(proc)

    for op, units in ops:
        size = units * GRANULE
        if op == "alloc":
            if region.allocated + size <= region.capacity:
                run(region.extend_allocated(size))
        elif op == "protect":
            if region.protected + size <= region.allocated:
                run(region.extend_protected(size))
        else:
            if size <= region.protected and region.allocated == region.protected:
                run(region.shrink(size))
        # Invariants after every operation:
        assert 0 <= region.protected <= region.allocated <= region.capacity
        assert region.allocated % GRANULE == 0
        assert region.protected % GRANULE == 0
        # TZASC visibility matches the protected watermark exactly.
        if region.protected:
            with pytest.raises(AccessDenied):
                stack.board.memory.cpu_read(region.protected_end - 16, 16, N)
        if region.protected < region.allocated:
            stack.board.memory.cpu_read(region.protected_end, 16, N)
        # CMA accounting: free frames + allocated frames == region size.
        assert (
            cma.free_frames + region.allocated // GRANULE == cma.n_frames
        )


# ---------------------------------------------------------------------------
# frame database consistency
# ---------------------------------------------------------------------------
@given(
    actions=st.lists(
        st.tuples(st.sampled_from(["alloc", "free", "migrate"]),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=1, max_value=6)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_frame_db_never_double_owns(actions):
    from repro.ree.buddy import BuddyAllocator
    from repro.ree.pages import FrameDB, FrameState

    db = FrameDB(64 * PAGE_SIZE, PAGE_SIZE)
    buddy = BuddyAllocator(db)
    buddy.finalize()
    live = {}

    for op, slot, frames in actions:
        if op == "alloc":
            if slot not in live and buddy.free_outside_cma >= frames:
                live[slot] = buddy.allocate(frames, movable=True, tag="t%d" % slot)
        elif op == "free":
            if slot in live:
                buddy.free(live.pop(slot))
        else:  # migrate one frame of a live allocation
            if slot in live and buddy.free_outside_cma >= 1:
                alloc = live[slot]
                old = next(iter(alloc.frames))
                dest_holder = buddy.allocate_one_outside()
                dest = next(iter(dest_holder.frames))
                db.release(dest_holder)
                db.move_frame(alloc, old, dest)
        # Invariants: ownership is exclusive and states match owners.
        owners = {}
        for frame in range(db.n_frames):
            owner = db.owner(frame)
            if owner is not None:
                assert db.state(frame) is not FrameState.FREE
                owners.setdefault(owner.alloc_id, set()).add(frame)
            else:
                assert db.state(frame) is FrameState.FREE
        for alloc in live.values():
            assert owners.get(alloc.alloc_id, set()) == alloc.frames
        total_owned = sum(len(v) for v in owners.values())
        assert total_owned + db.free_frames == db.n_frames
