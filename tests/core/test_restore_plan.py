"""Tests for restoration planning (§4.1 DAG extension)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MiB
from repro.core import build_restoration_plan
from repro.errors import ConfigurationError
from repro.llm import build_prefill_graph, build_tensor_table, get_model

SPEC = get_model("tinyllama-1.1b-q8")
TABLE = build_tensor_table(SPEC)
GRAPH = build_prefill_graph(SPEC, TABLE, 1, use_npu=False)


def test_plan_layout_is_contiguous_and_ordered():
    plan = build_restoration_plan(GRAPH, MiB)
    offset = 0
    for group in plan.groups:
        assert group.region_offset == offset
        assert group.alloc_bytes % MiB == 0
        assert group.alloc_bytes >= group.nominal_bytes
        offset += group.alloc_bytes
    assert plan.total_alloc_bytes == offset


def test_plan_covers_every_tensor_once():
    plan = build_restoration_plan(GRAPH, MiB)
    names = [t.name for g in plan.groups for t in g.tensors]
    assert sorted(names) == sorted(t.name for t in TABLE)
    assert len(names) == len(set(names))


def test_plan_groups_in_topological_order():
    plan = build_restoration_plan(GRAPH, MiB)
    earliest = [g.earliest_op for g in plan.groups]
    assert earliest == sorted(earliest)
    # Every parameter-consuming op maps to a group.
    for op in GRAPH.ops:
        if op.tensors:
            assert op.op_id in plan.group_for_op


def test_small_norm_groups_fused_into_neighbors():
    plan = build_restoration_plan(GRAPH, MiB)
    # No group should be a lone tiny norm tensor (they fuse forward).
    for group in plan.groups:
        assert group.nominal_bytes >= MiB or group is plan.groups[-1]
    # Fused groups serve several compute ops.
    multi = [g for g in plan.groups if len(g.compute_op_ids) > 1]
    assert multi


def test_alloc_overhead_from_alignment_is_small():
    plan = build_restoration_plan(GRAPH, MiB)
    overhead = plan.total_alloc_bytes / plan.total_nominal_bytes - 1.0
    assert overhead < 0.05


def test_group_lookup_by_bytes_roundtrip():
    plan = build_restoration_plan(GRAPH, MiB)
    for k in (0, 1, len(plan.groups) // 2, len(plan.groups)):
        prefix = plan.cached_prefix_bytes(k)
        assert plan.groups_for_bytes(prefix) == k
    with pytest.raises(ConfigurationError):
        plan.cached_prefix_bytes(len(plan.groups) + 1)


def test_dense_model_has_no_speculative_bytes():
    plan = build_restoration_plan(GRAPH, MiB)
    assert plan.speculative_bytes == 0


def test_moe_prefetches_all_experts():
    """The §4.1 limitation: non-determinism makes the planner prefetch
    experts that this inference may never route to."""
    moe = replace(SPEC, model_id="moe-test", n_experts=4, experts_per_token=1)
    table = build_tensor_table(moe)
    graph = build_prefill_graph(moe, table, 1, use_npu=False)
    plan = build_restoration_plan(graph, MiB)
    assert plan.speculative_bytes > 0
    # All experts of each layer are in the plan even though only one is
    # activated per token.
    expert_tensors = [t for g in plan.groups for t in g.tensors if t.expert >= 0]
    assert len(expert_tensors) == moe.n_layers * 4
    # Speculative fraction = 3 of 4 experts' FFN bytes.
    ffn_total = sum(t.nominal_bytes for t in expert_tensors)
    assert plan.speculative_bytes == pytest.approx(ffn_total * 3 / 4, rel=1e-6)


def test_invalid_granule_rejected():
    with pytest.raises(ConfigurationError):
        build_restoration_plan(GRAPH, 0)


@given(granule_mib=st.sampled_from([1, 2, 4, 8]), fuse_mib=st.sampled_from([0, 1, 4]))
@settings(max_examples=12, deadline=None)
def test_plan_invariants_hold_for_any_granule(granule_mib, fuse_mib):
    granule = granule_mib * MiB
    plan = build_restoration_plan(GRAPH, granule, fuse_below=fuse_mib * MiB or None)
    # FILO layout invariants survive any configuration.
    offset = 0
    for group in plan.groups:
        assert group.region_offset == offset
        offset += group.alloc_bytes
    assert plan.total_nominal_bytes == sum(t.nominal_bytes for t in TABLE)
    assert plan.groups_for_bytes(plan.total_alloc_bytes) == len(plan.groups)
    assert plan.groups_for_bytes(0) == 0
