"""Tests for hosting multiple protected models on one device."""

from dataclasses import replace

import pytest

from repro.core.multi import TZLLMMulti
from repro.errors import AccessDenied, ConfigurationError, SecurityViolation
from repro.llm import TINYLLAMA

SECOND = replace(TINYLLAMA, model_id="tinyllama-clone-b", display_name="Clone-B")
TINY = [
    replace(TINYLLAMA, model_id="m%d" % i, display_name="M%d" % i) for i in range(5)
]


@pytest.fixture(scope="module")
def multi():
    system = TZLLMMulti([TINYLLAMA, SECOND], cache_fraction=1.0)
    for model_id in (TINYLLAMA.model_id, SECOND.model_id):
        system.run_infer(model_id, 8, 0)  # cold starts
    return system


def test_both_models_serve_requests(multi):
    a = multi.run_infer(TINYLLAMA.model_id, 64, 4)
    b = multi.run_infer(SECOND.model_id, 64, 4)
    assert a.decode.token_ids and b.decode.token_ids
    assert a.ttft > 0 and b.ttft > 0


def test_models_have_disjoint_secure_regions(multi):
    a = multi.ta(TINYLLAMA.model_id).params_region
    b = multi.ta(SECOND.model_id).params_region
    assert a.tzasc_slot != b.tzasc_slot
    ranges_disjoint = (
        a.base_addr + a.capacity <= b.base_addr
        or b.base_addr + b.capacity <= a.base_addr
    )
    assert ranges_disjoint


def test_cross_ta_isolation(multi):
    """TA for model A cannot read model B's cached parameters or key."""
    multi.run_infer(SECOND.model_id, 16, 0)  # B's cache is resident
    ta_a = multi.ta(TINYLLAMA.model_id)
    region_b = multi.ta(SECOND.model_id).params_region
    assert region_b.protected > 0
    with pytest.raises(AccessDenied):
        multi.stack.tee_os.ta_read(ta_a, region_b.base_addr, 64)
    with pytest.raises(SecurityViolation):
        multi.stack.tee_os.unwrap_key_for(
            ta_a, multi.ta(SECOND.model_id).container.wrapped_key, SECOND.model_id
        )


def test_npu_grants_cover_both_models(multi):
    slots = set(multi.stack.tee_npu.allowed_slots)
    for model_id in (TINYLLAMA.model_id, SECOND.model_id):
        ta = multi.ta(model_id)
        assert ta.params_region.tzasc_slot in slots
        assert ta.data_region.tzasc_slot in slots


def test_tzasc_slot_limit_enforced():
    """Five models need ten regions; the TZC-400 has eight."""
    with pytest.raises(ConfigurationError, match="TZASC"):
        TZLLMMulti(TINY)


def test_memory_budget_enforced():
    from repro.llm import LLAMA3_8B

    big = [
        replace(LLAMA3_8B, model_id="big-%d" % i, display_name="Big%d" % i)
        for i in range(3)
    ]
    with pytest.raises(ConfigurationError, match="CMA"):
        TZLLMMulti(big)  # 3 x 8 GB cannot fit in 16 GB


def test_duplicate_or_empty_model_lists_rejected():
    with pytest.raises(ConfigurationError):
        TZLLMMulti([])
    with pytest.raises(ConfigurationError):
        TZLLMMulti([TINYLLAMA, TINYLLAMA])
