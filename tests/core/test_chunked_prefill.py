"""Prefix sharing through the TA: chunked in-batch prefill, rejoin
atomicity, stream determinism, chaos drain, and offline-analyzer parity.
"""

import pytest

from repro import TINYLLAMA, TZLLM
from repro.analysis.prefix_share import analyze_prefix_sharing
from repro.core import BatchConfig
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.llm import PagedKVCache, PromptSpec
from repro.llm.kv_cache import BlockCheckpoint
from repro.serve import GatewayConfig, ServeGateway
from repro.workloads.fleet import FleetTenantSpec, generate_fleet_trace

B = 16


def make_system(**kwargs):
    kwargs.setdefault(
        "batch_config",
        BatchConfig(
            max_batch_size=4,
            block_tokens=B,
            prefix_sharing=True,
            prefill_chunk_tokens=16,
        ),
    )
    kwargs.setdefault("cache_fraction", 1.0)
    return TZLLM(TINYLLAMA, **kwargs)


def infer(system, prompt_tokens, output_tokens, spec=None):
    proc = system.sim.process(
        system.infer(prompt_tokens, output_tokens, prompt=spec)
    )
    return system.sim.run_until(proc)


# ----------------------------------------------------------------------
# spec validation and the share split on the record
# ----------------------------------------------------------------------
def test_spec_must_match_prompt_tokens():
    system = make_system()
    with pytest.raises(ConfigurationError):
        infer(system, 32, 4, PromptSpec(new_tokens=16))


def test_record_reports_share_split_and_repeat_prefix_cuts_ttft():
    system = make_system()
    spec_a = PromptSpec(prefix_id="t/p0", prefix_tokens=4 * B,
                        session_id="t/s1", new_tokens=2 * B)
    r1 = infer(system, spec_a.prompt_tokens, 4, spec_a)
    assert r1.kv_hit_tokens == 0
    assert r1.kv_miss_tokens == spec_a.prompt_tokens

    spec_b = PromptSpec(prefix_id="t/p0", prefix_tokens=4 * B,
                        session_id="t/s2", new_tokens=2 * B)
    r2 = infer(system, spec_b.prompt_tokens, 4, spec_b)
    assert r2.kv_hit_tokens == 4 * B  # the shared prefix came for free
    assert r2.kv_hit_tokens + r2.kv_cow_tokens + r2.kv_miss_tokens == spec_b.prompt_tokens

    # Same shape, unshared prefix, same warm system: the prefix hit is
    # the only difference, and it pays for itself in TTFT.
    spec_c = PromptSpec(prefix_id="t/p9", prefix_tokens=4 * B,
                        session_id="t/s3", new_tokens=2 * B)
    r3 = infer(system, spec_c.prompt_tokens, 4, spec_c)
    assert r3.kv_hit_tokens == 0
    assert r2.ttft < r3.ttft

    # Sequential requests drain fully between turns; only the cached
    # residency (no live refs) survives in the pool.
    pool = system.ta.batch_engine.pool
    assert system.ta.kv_bytes_in_use == pool.cached_blocks * pool.block_bytes
    pool.check_conservation()


def test_token_streams_identical_with_sharing_on_and_off():
    """Acceptance: sharing must change where KV comes from, never what
    the model decodes."""
    specs = [
        PromptSpec(prefix_id="t/p0", prefix_tokens=4 * B, session_id="t/s1",
                   new_tokens=B + 5),
        PromptSpec(prefix_id="t/p0", prefix_tokens=4 * B, session_id="t/s2",
                   new_tokens=2 * B),
        PromptSpec(prefix_id="t/p0", prefix_tokens=4 * B, session_id="t/s1",
                   context_tokens=B + 5, new_tokens=B),
    ]
    shared = make_system()
    baseline = make_system(
        batch_config=BatchConfig(max_batch_size=4, block_tokens=B)
    )
    for spec in specs:
        on = infer(shared, spec.prompt_tokens, 12, spec)
        off = infer(baseline, spec.prompt_tokens, 12)
        assert on.decode.token_ids == off.decode.token_ids
    assert sum(1 for _ in specs) == 3


# ----------------------------------------------------------------------
# chunked prefill inside the running batch
# ----------------------------------------------------------------------
def test_miss_suffix_prefills_in_chunks_while_batch_decodes():
    system = make_system()
    sim = system.sim
    infer(system, 16, 2)  # warm the parameter cache (legacy path, no spec)
    engine = system.ta.batch_engine
    assert engine.prefill_chunks == 0

    records = {}

    def first():
        spec = PromptSpec(prefix_id="a/p0", prefix_tokens=2 * B,
                          session_id="a/s1", new_tokens=0)
        records["a"] = yield from system.infer(2 * B, 60, prompt=spec)

    def second():
        yield sim.timeout(5.0)  # arrive mid-decode of the first
        spec = PromptSpec(prefix_id="b/p0", prefix_tokens=8 * B,
                          session_id="b/s1", new_tokens=8 * B)
        records["b"] = yield from system.infer(16 * B, 8, prompt=spec)

    p1, p2 = sim.process(first()), sim.process(second())
    sim.run_until(p1)
    sim.run_until(p2)

    # The second request hit the resident-framework path: its 256-token
    # miss suffix ran as 16-token chunks inside the running batch
    # instead of serializing on the prefill lock.
    assert engine.prefill_chunks >= 2
    assert engine.prefill_tokens == 16 * B
    assert engine.prefill_busy_time > 0.0
    assert records["b"].kv_miss_tokens == 16 * B
    assert len(records["b"].decode.token_ids) == 8
    # The first stream was not disturbed by the interleaved prefill.
    assert len(records["a"].decode.token_ids) == 60
    assert system.ta.batch_engine.pool.used_blocks == system.ta.batch_engine.pool.cached_blocks


# ----------------------------------------------------------------------
# rejoin atomicity (satellite)
# ----------------------------------------------------------------------
def test_rejoin_refuses_stale_and_tampered_handles():
    system = make_system()
    engine = system.ta.batch_engine
    kv = PagedKVCache(engine.pool, owner="u/r7")
    kv.init_prompt(32)
    seq = engine.join(kv, 32, 4, request_id=7, prefill_tokens=10)
    engine.waiting.remove(seq)
    parked = engine.park(seq, at=0.0)
    assert parked.prefill_remaining == 10

    # A different object squatting on the id: the handle is stale, the
    # squatter must not be disturbed, the blocks must not move.
    engine.parked[7] = "impostor"
    before = engine.pool.parked_blocks
    with pytest.raises(ConfigurationError):
        engine.rejoin(parked)
    assert engine.parked[7] == "impostor"
    assert engine.pool.parked_blocks == before

    engine.parked[7] = parked
    resumed = engine.rejoin(parked)
    assert 7 not in engine.parked
    assert resumed.prefill_remaining == 10  # unfinished prefill carried over
    assert engine.pool.parked_blocks == 0
    engine.pool.check_conservation()

    # The handle is consumed: a second rejoin of the same park raises.
    with pytest.raises(ConfigurationError):
        engine.rejoin(parked)
    engine.waiting.remove(resumed)
    kv.release()
    engine.pool.check_conservation()


def test_rejoin_terminal_failure_releases_blocks_exactly_once():
    system = make_system()
    engine = system.ta.batch_engine
    kv = PagedKVCache(engine.pool, owner="u/r9")
    kv.init_prompt(48)
    seq = engine.join(kv, 48, 4, request_id=9)
    engine.waiting.remove(seq)
    parked = engine.park(seq, at=0.0)
    # Corrupt the checkpoint: restore can never succeed.
    parked.checkpoint = BlockCheckpoint(block_ids=(10 ** 6,), tokens=1)
    with pytest.raises(ConfigurationError):
        engine.rejoin(parked)
    # Exactly-once teardown: entry gone, blocks back, nothing stranded.
    assert 9 not in engine.parked
    assert engine.pool.used_blocks == 0
    engine.pool.check_conservation()
    with pytest.raises(ConfigurationError):
        engine.rejoin(parked)


# ----------------------------------------------------------------------
# mid-prefill preemption through the gateway
# ----------------------------------------------------------------------
def test_midprefill_park_resumes_and_streams_correctly():
    system = make_system(batch_config=BatchConfig(
        max_batch_size=2, block_tokens=B, prefix_sharing=True,
        prefill_chunk_tokens=16,
    ))
    gateway = ServeGateway(system, GatewayConfig(batching=True, shedding=False))
    sim = system.sim
    warm = gateway.submit(16, 2, priority="batch", tenant="warm")
    sim.run_until(warm.completion)

    anchor = gateway.submit(
        32, 200, priority="batch", tenant="anchor",
        prompt_spec=PromptSpec(prefix_id="a/p0", prefix_tokens=B,
                               session_id="a/s1", new_tokens=B),
    )
    holder = {}
    observed = {}

    def victim_then_rt():
        yield sim.timeout(3.0)  # joins while the anchor decodes
        holder["victim"] = gateway.submit(
            32 * B, 24, priority="background", tenant="victim",
            prompt_spec=PromptSpec(prefix_id="v/p0", prefix_tokens=16 * B,
                                   session_id="v/s1", new_tokens=16 * B),
        )
        yield sim.timeout(1.0)  # mid-prefill of the 512-token miss
        holder["rt"] = gateway.submit(16, 4, priority="interactive", tenant="rt")
        yield sim.timeout(0.5)
        engine = system.ta.batch_engine
        if engine.parked:
            (parked,) = engine.parked.values()
            observed["prefill_remaining"] = parked.prefill_remaining

    sim.process(victim_then_rt())
    sim.run_until(anchor.completion)
    sim.run_until(holder["victim"].completion)
    sim.run_until(holder["rt"].completion)

    victim = holder["victim"]
    assert victim.preemptions >= 1
    # The park happened with prefill still owed, and the resume finished
    # the remaining chunks before decoding.
    assert observed["prefill_remaining"] > 0
    assert len(victim.record.decode.token_ids) == 24
    # Determinism: the interrupted stream equals an undisturbed run.
    reference = make_system(
        batch_config=BatchConfig(max_batch_size=2, block_tokens=B)
    ).run_infer(32 * B, 24)
    assert victim.record.decode.token_ids == reference.decode.token_ids
    pool = system.ta.batch_engine.pool
    assert pool.used_blocks == pool.cached_blocks  # only residency remains
    pool.check_conservation()


# ----------------------------------------------------------------------
# chaos drain (acceptance: invariants through faults + preemption)
# ----------------------------------------------------------------------
def test_chaos_with_sharing_drains_to_zero():
    system = make_system(recovery=RecoveryPolicy.hardened())
    plan = FaultPlan(
        1337,
        [
            FaultSpec("flash.read_error", probability=0.05),
            FaultSpec("flash.bit_flip", probability=0.02),
            FaultSpec("tee.job_hang", probability=0.05, delay=5e-3, jitter=5e-3),
        ],
    )
    plan.injector(system.sim).arm(system)
    gateway = ServeGateway(system, GatewayConfig(batching=True, shedding=False))
    sim = system.sim
    requests = []

    def drive():
        for n in range(12):
            spec = PromptSpec(
                prefix_id="c/p%d" % (n % 2),
                prefix_tokens=4 * B,
                session_id="c/s%d" % (n % 3),
                new_tokens=B + (n % 3) * 7,
            )
            priority = ["interactive", "batch", "background"][n % 3]
            try:
                requests.append(gateway.submit(
                    spec.prompt_tokens, 8 + (n % 4) * 8, priority=priority,
                    tenant="c%d" % n, prompt_spec=spec,
                ))
            except Exception:
                pass  # admission rejections are fine under chaos
            yield sim.timeout(1.5)

    sim.run_until(sim.process(drive()))
    for request in requests:
        sim.run_until(request.completion)

    pool = system.ta.batch_engine.pool
    pool.check_conservation()
    assert pool.active_blocks == 0 and pool.parked_blocks == 0
    assert pool.reserved == 0

    # flush_kv drops the cached residency too: the TA is truly empty and
    # the data region shrinks to zero.
    dropped = sim.run_until(sim.process(system.flush_kv()))
    assert dropped == pool.cached_blocks == 0 or dropped > 0
    assert pool.used_blocks == 0
    assert system.ta.kv_bytes_in_use == 0
    assert system.ta.data_region.allocated == 0
    pool.check_conservation()


# ----------------------------------------------------------------------
# offline-analyzer parity (acceptance: online == analysis.prefix_share)
# ----------------------------------------------------------------------
def test_online_hit_tokens_match_offline_analyzer():
    """The serving path's per-request hit accounting, summed over a
    fleet trace, must equal ``analysis.prefix_share`` replayed on the
    same trace (unbounded cache on both sides: eviction order is the
    one legitimate divergence)."""
    tenants = [
        FleetTenantSpec(
            name="acme", model_id=TINYLLAMA.model_id, priority="interactive",
            sessions_per_hour=40.0, output_tokens=(4, 8), mean_turns=3.0,
            mean_think_time=30.0, stickiness=1.0,
            prefix_tokens=6 * B, prefix_pool=1,
        ),
        FleetTenantSpec(
            name="globex", model_id=TINYLLAMA.model_id, priority="batch",
            sessions_per_hour=25.0, output_tokens=(4, 8), mean_turns=2.0,
            mean_think_time=45.0, stickiness=1.0,
            prefix_tokens=10 * B, prefix_pool=2,
        ),
    ]
    trace = [
        r for r in generate_fleet_trace(600.0, tenants, seed=11)
        if r.prompt_tokens + r.output_tokens <= 1500
    ]
    assert len(trace) >= 8  # the trace must actually exercise sharing

    system = make_system(
        batch_config=BatchConfig(
            max_batch_size=4, block_tokens=B, prefix_sharing=True,
            budget_blocks=2048,
        ),
        max_tokens=2048,
    )
    records = []
    for request in trace:
        spec = PromptSpec.from_fleet_request(request)
        records.append(
            infer(system, spec.prompt_tokens, request.output_tokens, spec)
        )

    report = analyze_prefix_sharing(
        trace, [TINYLLAMA], system.stack.spec,
        block_tokens=B, cache_blocks=None,
    )
    assert sum(r.kv_hit_tokens for r in records) == report.hit_tokens
    assert report.hit_rate > 0.0
    # Per-request conservation of the share split.
    for record, request in zip(records, trace):
        assert (
            record.kv_hit_tokens + record.kv_cow_tokens + record.kv_miss_tokens
            == request.prompt_tokens
        )
    system.ta.batch_engine.pool.check_conservation()
