"""Tests for the §6 side-channel mitigations (size/timing obfuscation)."""

import pytest

from repro.config import MiB
from repro.core import TZLLM
from repro.core.obfuscation import apply_size_obfuscation, quantize_duration
from repro.core.restore_graph import build_restoration_plan
from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA, build_prefill_graph, build_tensor_table, container_path


def make_plan():
    table = build_tensor_table(TINYLLAMA)
    graph = build_prefill_graph(TINYLLAMA, table, 1, use_npu=False)
    return build_restoration_plan(graph, MiB)


def test_uniform_padding_makes_all_groups_equal():
    plan = make_plan()
    sizes_before = {g.alloc_bytes for g in plan.groups}
    assert len(sizes_before) > 1  # there was something to leak
    apply_size_obfuscation(plan, None)
    sizes_after = {g.alloc_bytes for g in plan.groups}
    assert len(sizes_after) == 1
    # Layout is still contiguous.
    offset = 0
    for group in plan.groups:
        assert group.region_offset == offset
        offset += group.alloc_bytes


def test_quantum_padding_coarsens_sizes():
    plan = make_plan()
    quantum = 16 * MiB
    apply_size_obfuscation(plan, quantum)
    for group in plan.groups:
        assert group.alloc_bytes % quantum == 0
        assert group.alloc_bytes >= group.nominal_bytes


def test_bad_quantum_rejected():
    plan = make_plan()
    with pytest.raises(ConfigurationError):
        apply_size_obfuscation(plan, MiB + 1)
    with pytest.raises(ConfigurationError):
        apply_size_obfuscation(plan, 0)


def test_quantize_duration():
    assert quantize_duration(0.003, 0.005) == pytest.approx(0.005)
    assert quantize_duration(0.005, 0.005) == pytest.approx(0.005)
    assert quantize_duration(0.0051, 0.005) == pytest.approx(0.010)
    assert quantize_duration(0.003, 0.0) == 0.003  # disabled


# ---------------------------------------------------------------------------
# end to end: what does the REE actually observe?
# ---------------------------------------------------------------------------
def _observed_sizes(system):
    """(alloc sizes, load nominal sizes) visible to the REE."""
    path = container_path(TINYLLAMA.model_id)
    allocs = [
        size
        for region, size in system.stack.tz_driver.alloc_observations
        if "params" in region
    ]
    loads = [
        nominal
        for p, _off, _size, nominal in system.stack.kernel.fs.request_log
        if p == path and nominal
    ]
    return allocs, loads


def test_without_obfuscation_the_ree_sees_tensor_structure():
    system = TZLLM(TINYLLAMA)
    system.run_infer(8, 0)
    _allocs, loads = _observed_sizes(system)
    # Distinct per-tensor load sizes leak the model's layer structure.
    assert len(set(loads)) > 3


def test_uniform_obfuscation_closes_the_size_channel():
    system = TZLLM(TINYLLAMA, size_obfuscation="uniform")
    system.run_infer(8, 0)
    _allocs, loads = _observed_sizes(system)
    # Every delegated load the REE sees is the same size.
    assert len(set(loads)) == 1
    # And the result is still a correct inference (decryption verified).
    record = system.run_infer(32, 2)
    assert record.decode.token_ids


def test_obfuscation_costs_memory_and_io():
    plain = TZLLM(TINYLLAMA)
    padded = TZLLM(TINYLLAMA, size_obfuscation="uniform")
    assert padded.ta.plan.total_alloc_bytes > 1.5 * plain.ta.plan.total_alloc_bytes
    plain.run_infer(8, 0)
    padded.run_infer(8, 0)
    r_plain = plain.run_infer(32, 0)
    r_padded = padded.run_infer(32, 0)
    # Dummy loading costs real TTFT: the mitigation is not free.
    assert r_padded.pipeline.io_time > 1.3 * r_plain.pipeline.io_time


def test_npu_duration_quantum_uniformizes_job_times():
    system = TZLLM(
        TINYLLAMA, cache_fraction=1.0, decode_use_npu=True, npu_duration_quantum=0.004
    )
    system.run_infer(8, 0)
    system.run_infer(32, 0)
    jobs_before = system.stack.board.npu.jobs_completed
    busy_before = system.stack.board.npu.busy_time
    system.run_infer(32, 4)
    jobs = system.stack.board.npu.jobs_completed - jobs_before
    busy = system.stack.board.npu.busy_time - busy_before
    # Every secure job's duration is a multiple of the quantum.
    assert jobs > 0
    assert busy / 0.004 == pytest.approx(round(busy / 0.004), abs=1e-6)
