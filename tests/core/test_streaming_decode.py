"""Tests for the §8 extension: parameter streaming during decode."""

import pytest

from repro.core import TZLLM
from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA


def make(residency):
    system = TZLLM(TINYLLAMA, decode_param_residency=residency)
    system.run_infer(8, 0)
    return system


def test_residency_bounds_validated():
    with pytest.raises(ConfigurationError):
        TZLLM(TINYLLAMA, decode_param_residency=0.0)
    with pytest.raises(ConfigurationError):
        TZLLM(TINYLLAMA, decode_param_residency=1.5)


def test_streaming_reduces_resident_memory_during_decode():
    system = make(0.5)
    sim = system.sim
    observed = {}

    def snoop():
        # Sample resident parameter memory mid-decode.
        yield sim.timeout(1.2)
        observed["resident"] = system.ta.params_region.protected

    sim.process(snoop())
    record = system.run_infer(32, 12)
    total = system.ta.plan.total_alloc_bytes
    assert observed["resident"] <= 0.55 * total
    assert record.streamed_bytes_per_token > 0
    assert record.stream_sweeps == 12


def test_streaming_costs_decode_speed():
    resident = make(1.0)
    streaming = make(0.5)
    fast = resident.run_infer(32, 8).decode_tokens_per_second
    slow_rec = streaming.run_infer(32, 8)
    slow = slow_rec.decode_tokens_per_second
    # Flash-bound decode: the streamed half must be read every token.
    assert slow < 0.7 * fast
    floor = slow_rec.streamed_bytes_per_token / resident.stack.spec.flash.seq_read_bw
    assert min(slow_rec.decode.step_times) >= floor * 0.95


def test_streaming_overlaps_prefetch_with_compute():
    """Double buffering: steady-state token time ~= max(stream, compute),
    not their sum."""
    system = make(0.5)
    record = system.run_infer(32, 12)
    stream_time = record.streamed_bytes_per_token / system.stack.spec.flash.seq_read_bw
    steady = record.decode.step_times[3:]
    # Well below stream+compute (the non-overlapped upper bound).
    compute_alone = TZLLM(TINYLLAMA)
    compute_alone.run_infer(8, 0)
    base = compute_alone.run_infer(32, 4).decode.step_times[-1]
    for step in steady:
        assert step < 0.9 * (stream_time + base + stream_time * 0.5)


def test_full_residency_streams_nothing():
    system = make(1.0)
    record = system.run_infer(32, 4)
    assert record.streamed_bytes_per_token == 0
    assert record.stream_sweeps == 0
