"""Continuous-batching decode: throughput, memory model, fault paths."""

import pytest

from repro import TINYLLAMA, TZLLM
from repro.core import BatchConfig
from repro.errors import ConfigurationError, TZLLMError
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy


def make_batched(**kwargs):
    kwargs.setdefault("batch_config", BatchConfig(max_batch_size=4, block_tokens=16))
    return TZLLM(TINYLLAMA, **kwargs)


def run_concurrent(system, n, prompt=32, out=32):
    sim = system.sim
    records = []

    def one():
        record = yield from system.infer(prompt, out)
        records.append(record)

    procs = [sim.process(one()) for _ in range(n)]
    for proc in procs:
        sim.run_until(proc)
    return records


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_batch_config_validation():
    with pytest.raises(ConfigurationError):
        BatchConfig(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        BatchConfig(block_tokens=0)
    with pytest.raises(ConfigurationError):
        BatchConfig(budget_blocks=0)


def test_budget_defaults_to_worst_case_batch():
    config = BatchConfig(max_batch_size=4, block_tokens=16)
    assert config.resolved_budget(1024) == 4 * 64


# ----------------------------------------------------------------------
# single stream through the batched path
# ----------------------------------------------------------------------
def test_batched_single_stream_matches_legacy_tokens():
    batched = make_batched().run_infer(32, 8)
    legacy = TZLLM(TINYLLAMA).run_infer(32, 8)
    assert batched.batched and not legacy.batched
    assert batched.decode.token_ids == legacy.decode.token_ids


def test_batched_inference_drains_kv_and_region():
    system = make_batched()
    system.run_infer(32, 8)
    assert system.ta.kv_bytes_in_use == 0
    assert system.ta.data_region.allocated == 0
    pool = system.ta.batch_engine.pool
    assert pool.used_blocks == 0 and pool.reserved == 0


# ----------------------------------------------------------------------
# the tentpole: throughput scales with batch size
# ----------------------------------------------------------------------
def test_batch4_doubles_aggregate_decode_throughput():
    """ISSUE acceptance: >= 2x aggregate decode throughput at batch 4
    versus the serialized single-stream baseline."""
    out = 48
    single = TZLLM(TINYLLAMA)
    serial_records = [single.run_infer(32, out) for _ in range(4)]
    serial_time = sum(sum(r.decode.step_times) for r in serial_records)
    serial_tput = 4 * out / serial_time

    batched = make_batched()
    records = run_concurrent(batched, 4, out=out)
    span = max(sum(r.decode.step_times) for r in records)
    batched_tput = 4 * out / span
    assert batched_tput >= 2.0 * serial_tput

    engine = batched.ta.batch_engine
    assert engine.occupancy_mean() > 2.0
    # Batching must not change what any sequence decodes.
    for record in records:
        assert record.decode.token_ids == serial_records[0].decode.token_ids


def test_batched_step_cost_has_setup_plus_marginal_shape():
    """Per-step cost = setup + per-token marginal: a fused batch-4 step
    costs far less than 4 single steps but more than one."""
    single = make_batched(batch_config=BatchConfig(max_batch_size=1))
    r1 = single.run_infer(32, 16)
    t1 = sorted(r1.decode.step_times)[len(r1.decode.step_times) // 2]

    quad = make_batched()
    records = run_concurrent(quad, 4, out=16)
    full_steps = [
        t for r in records for t in r.decode.step_times
    ]
    t4 = sorted(full_steps)[len(full_steps) // 2]
    assert t4 > t1  # the marginal per-token work is real...
    assert t4 < 2.0 * t1  # ...but far cheaper than replaying the weights


def test_occupancy_metrics_exported():
    from repro.obs import instrument

    system = make_batched()
    instrument(system)
    run_concurrent(system, 3, out=8)
    engine = system.ta.batch_engine
    assert engine.steps > 0
    assert sum(engine.occupancy_steps.values()) == engine.steps
    assert engine.tokens_generated == 3 * 8
    rendered = system.observability.registry.render()
    assert "batch_steps_total" in rendered
    assert "batch_tokens_total" in rendered


# ----------------------------------------------------------------------
# memory model: the data region stays end-grown, end-shrunk
# ----------------------------------------------------------------------
def test_region_grows_to_high_water_and_shrinks_at_drain():
    system = make_batched()
    sim = system.sim
    observed = {}

    def snoop():
        yield sim.timeout(6.0)  # mid-decode
        observed["allocated"] = system.ta.data_region.allocated
        observed["used_blocks"] = system.ta.batch_engine.pool.used_blocks

    sim.process(snoop())
    run_concurrent(system, 4, out=32)
    assert observed["used_blocks"] > 0
    assert observed["allocated"] > 0
    engine = system.ta.batch_engine
    assert observed["allocated"] >= engine.fixed_bytes
    # Fully drained: everything came back.
    assert system.ta.data_region.allocated == 0
    assert system.ta.kv_bytes_in_use == 0


def test_cma_requirements_cover_batched_budget():
    config = BatchConfig(max_batch_size=4, block_tokens=16)
    system = make_batched(batch_config=config)
    engine = system.ta.batch_engine
    # The boot-time CMA sizing must cover the worst-case backing.
    worst = engine.fixed_bytes + engine.pool.total_blocks * engine.pool.block_bytes
    assert system.ta.data_region.capacity >= worst


# ----------------------------------------------------------------------
# satellite 1: no KV leak on failure paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batched", [False, True], ids=["legacy", "batched"])
def test_faulted_inference_leaves_no_kv_bytes(batched):
    """A TEE job hang mid-decode surfaces WatchdogTimeout; the KV cache
    (legacy) or block pool (batched) must drain to zero and the TA must
    stay serviceable."""
    kwargs = {"batch_config": BatchConfig(max_batch_size=2)} if batched else {}
    system = TZLLM(
        TINYLLAMA,
        decode_use_npu=True,
        recovery=RecoveryPolicy(npu_job_timeout=0.05, npu_max_reissues=0),
        **kwargs,
    )
    plan = FaultPlan(
        7,
        [
            FaultSpec(
                "tee.job_hang", probability=1.0, delay=10.0,
                window=(5.0, 1e9), max_fires=1,
            )
        ],
    )
    plan.injector(system.sim).arm(system)
    with pytest.raises(TZLLMError):
        system.run_infer(32, 64)
    assert system.ta.kv_bytes_in_use == 0
    assert system.ta.data_region.allocated == 0
    # Serviceable again once the wedged device drains.
    system.sim.run_until(system.sim.timeout(15.0))
    record = system.run_infer(16, 4)
    assert len(record.decode.token_ids) == 4
    assert system.ta.kv_bytes_in_use == 0


def test_step_fault_fails_whole_batch_without_stranding_blocks():
    system = make_batched(
        batch_config=BatchConfig(max_batch_size=2),
        decode_use_npu=True,
        recovery=RecoveryPolicy(npu_job_timeout=0.05, npu_max_reissues=0),
    )
    plan = FaultPlan(
        3,
        [
            FaultSpec(
                "tee.job_hang", probability=1.0, delay=10.0,
                window=(5.0, 1e9), max_fires=1,
            )
        ],
    )
    plan.injector(system.sim).arm(system)
    sim = system.sim
    outcomes = []

    def one():
        try:
            yield from system.infer(32, 64)
        except TZLLMError as exc:
            outcomes.append(type(exc).__name__)
        else:
            outcomes.append("ok")

    procs = [sim.process(one()) for _ in range(2)]
    for proc in procs:
        sim.run_until(proc)
    assert outcomes == ["WatchdogTimeout", "WatchdogTimeout"]
    assert system.ta.kv_bytes_in_use == 0
    assert system.ta.batch_engine.pool.reserved == 0
