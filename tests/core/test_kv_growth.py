"""Tests for mid-decode KV-region growth (§4.2 data-region pattern)."""

import pytest

from repro.core import TZLLM
from repro.llm import TINYLLAMA


@pytest.fixture(scope="module")
def system():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    return system


def test_kv_region_grows_during_long_decode(system):
    # TinyLlama KV is ~22.5 KB/token; with a 1 MiB granule the region
    # must extend at least once while decoding 64 tokens.
    record = system.run_infer(32, 64)
    assert record.kv_growth_extends >= 1
    assert len(record.decode.token_ids) == 64
    # The data region is fully released afterwards.
    assert system.ta.data_region.allocated == 0


def test_short_decode_needs_no_growth(system):
    record = system.run_infer(32, 2)
    assert record.kv_growth_extends == 0


def test_growth_visible_to_ree_as_cma_extensions(system):
    """The REE really serves the mid-decode extensions (ballooning)."""
    data_region = "%s:data" % TINYLLAMA.model_id
    before = [
        size for name, size in system.stack.tz_driver.alloc_observations
        if name == data_region
    ]
    record = system.run_infer(32, 64)
    after = [
        size for name, size in system.stack.tz_driver.alloc_observations
        if name == data_region
    ]
    assert len(after) - len(before) == 1 + record.kv_growth_extends


def test_initial_region_sized_for_prompt_not_output(system):
    """The region starts at prompt-KV size: generating many tokens must
    not reserve their memory up front."""
    short = system.run_infer(32, 0)
    long_prompt = system.run_infer(480, 0)
    # Setup cost scales with prompt KV (long prompt allocates more now).
    assert long_prompt.data_setup_time > short.data_setup_time
