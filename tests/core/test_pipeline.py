"""Tests for the pipelined restoration executor (§4.1 / Fig. 5)."""

import pytest

from repro.config import MiB
from repro.core import PipelineConfig, TZLLM, strawman
from repro.core.caching import ThresholdProfiler
from repro.errors import ConfigurationError
from repro.llm import get_model

SPEC = get_model("tinyllama-1.1b-q8")


def make_system(**kwargs):
    return TZLLM(SPEC, max_tokens=1024, **kwargs)


def warm(system):
    """First request pays cold init + checkpoint save; drop it."""
    return system.run_infer(8, 0)


def test_pipelined_beats_sequential_restoration():
    pipelined = make_system()
    warm(pipelined)
    fast = pipelined.run_infer(128, 0)

    sequential = make_system(pipeline_config=PipelineConfig(pipelined=False))
    warm(sequential)
    slow = sequential.run_infer(128, 0)

    assert fast.ttft < slow.ttft
    # Restoration was fully serialized in the sequential run: its TTFT is
    # at least io + alloc + decrypt + compute.
    m = slow.pipeline
    assert slow.ttft >= m.io_time + m.alloc_time + m.decrypt_time


def test_preemption_reduces_ttft_under_pressure():
    config_np = PipelineConfig(preemptive=False)
    with_p = make_system()
    without_p = make_system(pipeline_config=config_np)
    for system in (with_p, without_p):
        system.apply_pressure(13 * 10 ** 9)
        warm(system)
    t_with = with_p.run_infer(512, 0).ttft
    t_without = without_p.run_infer(512, 0).ttft
    assert t_with <= t_without * 1.001


def test_metrics_paths_accounted():
    system = make_system()
    warm(system)
    record = system.run_infer(128, 0)
    m = record.pipeline
    assert m.io_time > 0
    assert m.decrypt_time > 0
    assert m.cpu_compute_time > 0
    assert m.npu_compute_time > 0
    assert m.loaded_bytes == pytest.approx(system.ta.plan.total_nominal_bytes)
    assert m.lower_bound == max(m.io_path, m.cpu_path, m.computation_path)
    # The achieved TTFT can never beat the lower bound.
    assert m.ttft >= m.lower_bound * 0.999


def test_ttft_close_to_lower_bound():
    """§7.2.1: the greedy policy lands near the theoretical optimum."""
    system = make_system(cache_fraction=0.2)
    warm(system)
    system.run_infer(128, 0)  # establishes the 20% cache
    record = system.run_infer(128, 0)
    m = record.pipeline
    assert m.ttft <= m.lower_bound * 1.35


def test_partial_caching_skips_restoration():
    cached = make_system(cache_fraction=0.5)
    uncached = make_system(cache_fraction=0.0)
    for system in (cached, uncached):
        warm(system)
        system.run_infer(128, 0)  # establish the steady-state cache
    hot = cached.run_infer(128, 0)
    cold = uncached.run_infer(128, 0)
    assert hot.cached_groups > 0
    assert cold.cached_groups == 0
    assert hot.cached_bytes >= 0.4 * cached.ta.plan.total_alloc_bytes
    assert hot.ttft < cold.ttft
    assert hot.pipeline.loaded_bytes < cold.pipeline.loaded_bytes


def test_full_cache_eliminates_restoration():
    system = make_system(cache_fraction=1.0)
    warm(system)
    system.run_infer(64, 0)
    record = system.run_infer(64, 0)
    assert record.cached_groups == len(system.ta.plan.groups)
    assert record.pipeline.loaded_bytes == 0
    assert record.pipeline.io_time == 0
    assert record.pipeline.alloc_time == 0


def test_cache_released_in_reverse_order_keeps_contiguity():
    system = make_system(cache_fraction=0.3)
    warm(system)
    system.run_infer(64, 0)
    region = system.ta.params_region
    # The cached prefix is exactly the plan's leading groups.
    cached = system.ta.cached_groups
    assert region.protected == system.ta.plan.cached_prefix_bytes(cached)
    assert region.allocated == region.protected


def test_strawman_is_cold_every_time():
    system = strawman(SPEC, max_tokens=512)
    a = system.run_infer(32, 0)
    b = system.run_infer(32, 0)
    # No caching, cold init each request: both requests cost the same.
    assert b.cached_groups == 0
    assert b.init_time == pytest.approx(a.init_time, rel=0.2)
    assert b.ttft == pytest.approx(a.ttft, rel=0.05)
    # And the strawman prefill runs on the CPU only.
    assert b.pipeline.npu_compute_time == 0


def test_world_switch_overhead_small_fraction_of_ttft():
    """§7.3: smc + TZASC/TZPC/GIC switching is a few percent."""
    system = make_system()
    warm(system)
    record = system.run_infer(512, 8)
    assert record.world_switch_time > 0
    assert record.world_switch_time < 0.06 * (record.ttft + sum(record.decode.step_times))


def test_threshold_profiler_finds_knee():
    profiler = ThresholdProfiler(tolerance=0.05)
    points = [(0.0, 10.0), (0.2, 8.0), (0.4, 6.0), (0.6, 5.05), (0.8, 5.0), (1.0, 5.0)]
    assert profiler.find_knee(points) == 0.6
    with pytest.raises(ConfigurationError):
        profiler.find_knee([(0.0, 1.0)])


def test_request_exceeding_max_tokens_rejected():
    system = make_system()
    warm(system)
    with pytest.raises(ConfigurationError):
        system.run_infer(1024, 1)
