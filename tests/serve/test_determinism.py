"""Same seed + same trace => byte-identical logs and metrics.

The serving layer adds no randomness of its own (deques, monotonic ids,
an EWMA), and the trace generator derives every tenant's RNG from
(name, seed) — so two full serving runs must agree to the last byte in
both the request log and the JSON metrics export.
"""

import json

import pytest

from repro.core import TZLLM
from repro.llm import TINYLLAMA
from repro.serve import GatewayConfig, LoadGenerator, ServeGateway
from repro.workloads import TenantSpec, generate_multitenant_trace

# Dense enough that requests genuinely queue (and preempt) — a trace the
# scheduler never has to arbitrate would make the comparison vacuous.
TENANTS = [
    TenantSpec(
        "chat",
        TINYLLAMA.model_id,
        "interactive",
        rate_per_hour=240,
        output_tokens=(2, 8),
    ),
    TenantSpec(
        "indexer",
        TINYLLAMA.model_id,
        "background",
        rate_per_hour=90,
        workload="droidtask",
        output_tokens=(48, 96),
    ),
]


def run_once(scheduling):
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    gateway = ServeGateway(system, GatewayConfig(scheduling=scheduling))
    trace = generate_multitenant_trace(300.0, TENANTS, seed=3)
    loadgen = LoadGenerator(gateway, trace).run_blocking()
    metrics = json.dumps(gateway.accountant.to_dict(), sort_keys=True)
    return gateway.request_log(), metrics, loadgen.offered


@pytest.fixture(scope="module")
def runs():
    return {
        "priority-1": run_once("priority"),
        "priority-2": run_once("priority"),
        "fifo": run_once("fifo"),
    }


def test_two_runs_are_byte_identical(runs):
    log_a, metrics_a, offered_a = runs["priority-1"]
    log_b, metrics_b, offered_b = runs["priority-2"]
    assert offered_a == offered_b > 5  # the trace actually exercised serving
    assert log_a == log_b
    assert metrics_a == metrics_b
    assert len(log_a.splitlines()) >= 3 * offered_a  # admit+dispatch+complete


def test_scheduling_mode_changes_the_log(runs):
    log_priority, _, _ = runs["priority-1"]
    log_fifo, _, _ = runs["fifo"]
    # Same arrival stream (the trace is generated before scheduling)...
    first_p = log_priority.splitlines()[0]
    first_f = log_fifo.splitlines()[0]
    assert first_p == first_f
    # ...but the dispatch decisions genuinely differ between policies.
    assert log_priority != log_fifo
    verbs_priority = {line.split()[1] for line in log_priority.splitlines()}
    verbs_fifo = {line.split()[1] for line in log_fifo.splitlines()}
    assert "preempt" in verbs_priority
    assert "preempt" not in verbs_fifo
