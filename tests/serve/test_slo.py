"""Unit tests for SLO accounting: histograms, gauges, the accountant."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    GaugeSeries,
    LatencyHistogram,
    PriorityClass,
    SLOAccountant,
    ServeRequest,
    default_policies,
)


class FakeSim:
    """Just a clock — the accountant only reads ``now``."""

    def __init__(self):
        self.now = 0.0


def make_done_request(request_id=1, priority=PriorityClass.INTERACTIVE, **kwargs):
    fields = dict(
        tenant="t",
        model_id="m",
        prompt_tokens=16,
        output_tokens=4,
        arrived_at=0.0,
        deadline=5.0,
        state="done",
        dispatched_at=0.5,
        first_token_at=1.0,
        finished_at=2.0,
    )
    fields.update(kwargs)
    return ServeRequest(request_id=request_id, priority=priority, **fields)


# ----------------------------------------------------------------------
# histogram
# ----------------------------------------------------------------------
def test_histogram_summary_and_empty():
    hist = LatencyHistogram("x")
    assert hist.summary() is None
    for v in (0.1, 0.2, 0.3, 0.4):
        hist.add(v)
    summary = hist.summary()
    assert summary.count == 4
    assert summary.p50 == pytest.approx(0.25)
    assert summary.max == pytest.approx(0.4)
    assert len(hist) == 4


def test_histogram_rejects_negative():
    hist = LatencyHistogram("x")
    with pytest.raises(ConfigurationError):
        hist.add(-0.1)


def test_histogram_log_buckets():
    hist = LatencyHistogram("x")
    for v in (0.0005, 0.002, 0.003, 5.0):
        hist.add(v)
    buckets = hist.buckets(base=2.0, floor=1e-3)
    edges = [edge for edge, _ in buckets]
    counts = [count for _, count in buckets]
    assert edges == sorted(edges)
    assert sum(counts) == 4
    # Every sample sits at or below its bucket's upper edge.
    assert edges[0] == pytest.approx(1e-3)  # the <= floor bucket
    assert counts[0] == 1
    with pytest.raises(ConfigurationError):
        hist.buckets(base=1.0)


# ----------------------------------------------------------------------
# gauges
# ----------------------------------------------------------------------
def test_gauge_step_function_mean():
    gauge = GaugeSeries("depth")
    gauge.sample(0.0, 2.0)
    gauge.sample(10.0, 4.0)
    assert gauge.last == 4.0
    assert gauge.max_value() == 4.0
    assert gauge.time_weighted_mean(20.0) == pytest.approx(3.0)
    # Truncating the window weights only what happened inside it.
    assert gauge.time_weighted_mean(10.0) == pytest.approx(2.0)


def test_gauge_empty_and_degenerate():
    gauge = GaugeSeries("depth")
    assert gauge.last == 0.0
    assert gauge.max_value() == 0.0
    assert gauge.time_weighted_mean(10.0) == 0.0
    gauge.sample(5.0, 1.0)
    assert gauge.time_weighted_mean(5.0) == 0.0  # zero-width window


# ----------------------------------------------------------------------
# accountant
# ----------------------------------------------------------------------
def test_accountant_observe_and_summary():
    sim = FakeSim()
    acct = SLOAccountant(sim, default_policies())
    acct.observe(make_done_request(1, first_token_at=1.0, finished_at=2.0))
    acct.observe(make_done_request(2, first_token_at=3.0, finished_at=4.0))
    summary = acct.summary(PriorityClass.INTERACTIVE, "ttft")
    assert summary.count == 2
    assert summary.p50 == pytest.approx(2.0)  # ttfts 1.0 and 3.0
    assert acct.classes[PriorityClass.INTERACTIVE].completed == 2
    # Request 1 attained the 5s deadline, request 2 did too (3.0 <= 5.0).
    assert acct.classes[PriorityClass.INTERACTIVE].slo_attained == 2
    acct.observe(make_done_request(3, first_token_at=9.0, finished_at=9.5))
    assert acct.classes[PriorityClass.INTERACTIVE].slo_violated == 1
    with pytest.raises(ConfigurationError):
        acct.summary(PriorityClass.INTERACTIVE, "nope")


def test_accountant_utilization_tracks_busy_time():
    sim = FakeSim()
    acct = SLOAccountant(sim, default_policies())
    acct.note_dispatch("m")
    sim.now = 10.0
    acct.note_release("m")
    assert acct.utilization("m") == pytest.approx(1.0)
    sim.now = 20.0
    assert acct.utilization("m") == pytest.approx(0.5)
    # A dispatch still in flight counts up to "now".
    acct.note_dispatch("m")
    sim.now = 30.0
    assert acct.utilization("m") == pytest.approx(20.0 / 30.0)


def test_accountant_queue_depth_and_rejections():
    sim = FakeSim()
    acct = SLOAccountant(sim, default_policies())
    acct.note_queue_depth(PriorityClass.BATCH, 3)
    sim.now = 1.0
    acct.note_queue_depth(PriorityClass.BATCH, 1)
    assert acct.queue_depth[PriorityClass.BATCH].max_value() == 3.0
    acct.note_rejected(PriorityClass.INTERACTIVE, "queue-full")
    acct.note_rejected(PriorityClass.INTERACTIVE, "queue-full")
    acct.note_rejected(PriorityClass.INTERACTIVE, "slo-unattainable")
    assert acct.classes[PriorityClass.INTERACTIVE].rejected == {
        "queue-full": 2,
        "slo-unattainable": 1,
    }


def test_accountant_export_is_json_stable():
    sim = FakeSim()
    acct = SLOAccountant(sim, default_policies())
    acct.observe(make_done_request())
    sim.now = 10.0
    exported = acct.to_dict()
    # Round-trips through JSON and contains the per-class skeleton.
    doc = json.loads(json.dumps(exported, sort_keys=True))
    for label in ("interactive", "batch", "background"):
        assert label in doc["classes"]
        assert set(doc["classes"][label]) >= {
            "completed",
            "ttft",
            "tbt",
            "e2e",
            "rejected",
            "preemptions",
        }
    assert doc["classes"]["interactive"]["completed"] == 1
    assert doc["classes"]["interactive"]["ttft"]["p50"] == pytest.approx(1.0)
    assert doc["classes"]["batch"]["ttft"] is None  # no samples


def test_histogram_buckets_edge_cases():
    hist = LatencyHistogram("x")
    # Empty histogram: no buckets, not an error.
    assert hist.buckets() == []
    # Single sample below the floor lands in the floor bucket.
    hist.add(1e-6)
    assert hist.buckets(base=2.0, floor=1e-3) == [(pytest.approx(1e-3), 1)]
    # A sample exactly on a bucket edge counts in that bucket, not above.
    hist2 = LatencyHistogram("y")
    hist2.add(2e-3)  # == floor * base**1
    ((edge, count),) = hist2.buckets(base=2.0, floor=1e-3)
    assert edge == pytest.approx(2e-3)
    assert count == 1


def test_gauge_single_sample_mean_and_future_window():
    gauge = GaugeSeries("depth")
    gauge.sample(2.0, 3.0)
    # One sample held for the whole window: the mean is that value.
    assert gauge.time_weighted_mean(12.0) == pytest.approx(3.0)
    # A window ending before the first sample has no area.
    assert gauge.time_weighted_mean(1.0) == 0.0


def test_gauge_samples_past_window_are_ignored():
    gauge = GaugeSeries("depth")
    gauge.sample(0.0, 1.0)
    gauge.sample(4.0, 10.0)
    gauge.sample(8.0, 100.0)
    # Window [0, 4): only the first step contributes.
    assert gauge.time_weighted_mean(4.0) == pytest.approx(1.0)
    # Window [0, 6): 4s at 1.0, 2s at 10.0.
    assert gauge.time_weighted_mean(6.0) == pytest.approx((4 * 1.0 + 2 * 10.0) / 6.0)
