"""Circuit breaker: unit transitions plus gateway-level open/probe/close."""

import pytest

from repro import TINYLLAMA, TZLLM
from repro.errors import (
    ConfigurationError,
    IagoViolation,
    OutOfMemory,
    StorageError,
    WatchdogTimeout,
)
from repro.faults import FaultPlan, FaultSpec
from repro.serve import CircuitBreaker, CircuitOpen, GatewayConfig, ServeGateway, classify_failure
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------
def test_classification():
    assert classify_failure(StorageError("x")) == "retryable"
    assert classify_failure(WatchdogTimeout("x")) == "retryable"
    assert classify_failure(OutOfMemory("x")) == "retryable"
    assert classify_failure(IagoViolation("x")) == "fatal"
    assert classify_failure(ConfigurationError("x")) == "fatal"
    assert classify_failure(RuntimeError("x")) == "fatal"  # unknown: never retry


# ---------------------------------------------------------------------------
# unit transitions
# ---------------------------------------------------------------------------
def advance(sim, seconds):
    def waiter():
        yield sim.timeout(seconds)

    sim.run_until(sim.process(waiter()))


def test_breaker_opens_after_threshold():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=3, cooldown=1.0)
    assert breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open" and not breaker.allow()
    assert breaker.remaining_cooldown() == pytest.approx(1.0)


def test_success_resets_consecutive_count():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=2, cooldown=1.0)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"


def test_half_open_probe_then_close():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=1, cooldown=1.0)
    breaker.record_failure()
    assert not breaker.allow()
    advance(sim, 1.0)
    assert breaker.allow()  # cooldown elapsed: half-open
    assert breaker.state == "half_open"
    breaker.on_dispatch()
    assert not breaker.allow()  # one probe at a time
    breaker.record_success()
    assert breaker.state == "closed" and breaker.allow()


def test_half_open_probe_failure_reopens():
    sim = Simulator()
    breaker = CircuitBreaker(sim, failure_threshold=1, cooldown=1.0)
    breaker.record_failure()
    advance(sim, 1.0)
    assert breaker.allow()
    breaker.on_dispatch()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.opens == 2
    assert [s for _, s in breaker.transitions] == ["open", "half_open", "open"]


def test_breaker_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        CircuitBreaker(sim, failure_threshold=0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(sim, cooldown=0.0)


# ---------------------------------------------------------------------------
# gateway integration
# ---------------------------------------------------------------------------
@pytest.fixture()
def failing_system():
    """A TZ-LLM system whose flash fails every read (legacy recovery, so
    each dispatch surfaces StorageError)."""
    system = TZLLM(TINYLLAMA, cache_fraction=0.0)
    system.run_infer(8, 0)  # cold start before arming
    plan = FaultPlan(11, [FaultSpec(site="flash.read_error", probability=1.0)])
    injector = plan.injector(system.sim).arm(system)
    return system, injector


def test_gateway_retries_then_fails_and_opens_breaker(failing_system):
    system, injector = failing_system
    gateway = ServeGateway(
        system,
        GatewayConfig(max_retries=2, breaker_threshold=3, breaker_cooldown=2.0),
    )
    request = gateway.submit_blocking(prompt_tokens=16, output_tokens=0)
    assert request.failed and request.failed_at is not None
    # 1 initial attempt + 2 retries, every one a recorded failure.
    assert request.failure_count == 3
    assert [kind for _, kind, _ in request.failures] == ["StorageError"] * 3
    assert all(cls == "retryable" for _, _, cls in request.failures)
    lane = gateway.lanes[system.model.model_id]
    assert lane.breaker.state == "open"
    export = gateway.accountant.to_dict()["classes"]["interactive"]
    assert export["failures"] == {"StorageError": 3}
    assert export["retries"] == 2
    assert export["failed"] == 1
    verbs = [line.split()[1] for line in gateway.log]
    assert verbs == ["admit", "dispatch", "requeue", "dispatch", "requeue", "dispatch", "fail"]


def test_open_breaker_rejects_at_admission(failing_system):
    system, injector = failing_system
    gateway = ServeGateway(
        system,
        GatewayConfig(max_retries=0, breaker_threshold=1, breaker_cooldown=60.0),
    )
    gateway.submit_blocking(prompt_tokens=16, output_tokens=0)
    assert gateway.lanes[system.model.model_id].breaker.state == "open"
    with pytest.raises(CircuitOpen):
        gateway.submit(prompt_tokens=16, output_tokens=0)
    export = gateway.accountant.to_dict()["classes"]["interactive"]
    assert export["rejected"] == {"circuit-open": 1}


def test_breaker_probe_recovers_after_faults_clear(failing_system):
    system, injector = failing_system
    gateway = ServeGateway(
        system,
        GatewayConfig(max_retries=0, breaker_threshold=1, breaker_cooldown=0.5),
    )
    failed = gateway.submit_blocking(prompt_tokens=16, output_tokens=0)
    assert failed.failed
    lane = gateway.lanes[system.model.model_id]
    assert lane.breaker.state == "open"
    # An arrival during the cooldown is shed at the door.
    with pytest.raises(CircuitOpen):
        gateway.submit(prompt_tokens=16, output_tokens=0)
    # The fault clears and the cooldown elapses.
    injector.disarm(system)
    advance(system.sim, 0.5)
    request = gateway.submit_blocking(prompt_tokens=16, output_tokens=2)
    assert request.done
    assert lane.breaker.state == "closed"
    assert lane.breaker.opens == 1
