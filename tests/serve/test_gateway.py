"""Behavioral tests for the serving gateway: dispatch, preemption, errors."""

import pytest

from repro.core import TZLLM
from repro.core.multi import TZLLMMulti
from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA
from repro.serve import (
    GatewayConfig,
    PriorityClass,
    SLOUnattainable,
    ServeGateway,
)

from dataclasses import replace


@pytest.fixture(scope="module")
def system():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)  # cold start off the measured path
    return system


def make_gateway(system, **overrides):
    return ServeGateway(system, GatewayConfig(**overrides))


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
def test_submit_blocking_serves_a_request(system):
    gateway = make_gateway(system)
    request = gateway.submit_blocking(prompt_tokens=64, output_tokens=8, priority="interactive")
    assert request.done
    assert request.tokens_generated == 8
    assert request.arrived_at <= request.dispatched_at <= request.first_token_at
    assert request.first_token_at <= request.finished_at
    assert request.ttft > 0
    assert request.e2e_latency >= request.ttft
    assert request.attempts == 1 and request.preemptions == 0
    assert request.slo_attained is True
    assert gateway.completed == [request]


def test_request_log_records_lifecycle(system):
    gateway = make_gateway(system)
    gateway.submit_blocking(prompt_tokens=32, output_tokens=2, tenant="chat")
    verbs = [line.split()[1] for line in gateway.log]
    assert verbs == ["admit", "dispatch", "complete"]
    assert "chat" in gateway.log[0]


def test_validation_errors(system):
    gateway = make_gateway(system)
    with pytest.raises(ConfigurationError):
        gateway.submit(prompt_tokens=0)
    with pytest.raises(ConfigurationError):
        gateway.submit(prompt_tokens=8, output_tokens=-1)
    with pytest.raises(ConfigurationError):
        gateway.submit(prompt_tokens=8, model_id="no-such-model")
    with pytest.raises(ConfigurationError):
        gateway.submit(prompt_tokens=8, priority="urgent")
    with pytest.raises(ConfigurationError):
        GatewayConfig(scheduling="round-robin")


# ----------------------------------------------------------------------
# scheduling order
# ----------------------------------------------------------------------
def queue_three_classes(gateway):
    """Occupy the lane, then queue one request of each class."""
    running = gateway.submit(prompt_tokens=64, output_tokens=8, priority="background")
    queued = {
        "background": gateway.submit(prompt_tokens=16, output_tokens=1, priority="background"),
        "batch": gateway.submit(prompt_tokens=16, output_tokens=1, priority="batch"),
        "interactive": gateway.submit(prompt_tokens=16, output_tokens=1, priority="interactive"),
    }
    everyone = [running] + list(queued.values())
    gateway.sim.run_until(gateway.sim.all_of([r.completion for r in everyone]))
    return queued


def test_priority_scheduling_dispatches_most_urgent_first(system):
    gateway = make_gateway(system, scheduling="priority", preemption=False)
    queued = queue_three_classes(gateway)
    assert (
        queued["interactive"].dispatched_at
        < queued["batch"].dispatched_at
        < queued["background"].dispatched_at
    )


def test_fifo_scheduling_preserves_arrival_order(system):
    gateway = make_gateway(system, scheduling="fifo")
    queued = queue_three_classes(gateway)
    assert (
        queued["background"].dispatched_at
        < queued["batch"].dispatched_at
        < queued["interactive"].dispatched_at
    )


# ----------------------------------------------------------------------
# preemption
# ----------------------------------------------------------------------
def test_interactive_preempts_running_background(system):
    sim = system.sim
    gateway = make_gateway(system)  # priority + preemption (the default)
    victim = gateway.submit(prompt_tokens=32, output_tokens=64, priority="background")
    sim.run(until=sim.now + 1.0)  # let the victim get into its decode
    urgent = gateway.submit(prompt_tokens=32, output_tokens=4, priority="interactive")
    sim.run_until(sim.all_of([victim.completion, urgent.completion]))

    assert gateway.preemption_signals == 1
    assert victim.done and victim.preemptions == 1 and victim.attempts == 2
    assert urgent.done and urgent.preemptions == 0
    # The urgent request's first token lands long before the victim's
    # ~7s decode would have finished.
    assert urgent.ttft < 2.0
    assert urgent.first_token_at < victim.finished_at
    assert gateway.wasted_time > 0
    verbs = [line.split()[1] for line in gateway.log]
    assert "preempt" in verbs and "requeue" in verbs
    # The victim's retry found its parameters still cached (fraction=1.0),
    # so the wasted work is bounded by the partial decode, not a restore.
    assert victim.record.cached_bytes > 0


def test_preemption_disabled_runs_to_completion(system):
    sim = system.sim
    gateway = make_gateway(system, preemption=False)
    victim = gateway.submit(prompt_tokens=32, output_tokens=32, priority="background")
    sim.run(until=sim.now + 1.0)
    urgent = gateway.submit(prompt_tokens=32, output_tokens=2, priority="interactive")
    sim.run_until(sim.all_of([victim.completion, urgent.completion]))
    assert gateway.preemption_signals == 0
    assert victim.preemptions == 0 and victim.attempts == 1
    assert urgent.dispatched_at >= victim.finished_at


def test_interactive_never_preempts_interactive(system):
    sim = system.sim
    gateway = make_gateway(system)
    first = gateway.submit(prompt_tokens=32, output_tokens=16, priority="interactive")
    sim.run(until=sim.now + 0.5)
    second = gateway.submit(prompt_tokens=16, output_tokens=2, priority="interactive")
    sim.run_until(sim.all_of([first.completion, second.completion]))
    assert gateway.preemption_signals == 0
    assert first.preemptions == 0


def test_accountant_sees_completions_and_utilization(system):
    gateway = make_gateway(system)
    gateway.submit_blocking(prompt_tokens=32, output_tokens=4, priority="batch")
    stats = gateway.accountant.classes[PriorityClass.BATCH]
    assert stats.completed == 1
    assert stats.tokens_out == 4
    assert 0 < gateway.accountant.utilization(TINYLLAMA.model_id) <= 1.0
    exported = gateway.accountant.to_dict()
    assert exported["classes"]["batch"]["completed"] == 1


def test_predictor_learns_from_completions(system):
    gateway = make_gateway(system)
    assert gateway.predictor.predicted_ttft(TINYLLAMA.model_id) == 0.0
    gateway.submit_blocking(prompt_tokens=64, output_tokens=4)
    assert gateway.predictor.predicted_ttft(TINYLLAMA.model_id) > 0.0
    assert gateway.predictor.predicted_service(TINYLLAMA.model_id) > 0.0


def test_slo_shedding_when_lane_is_saturated(system):
    sim = system.sim
    gateway = make_gateway(system)
    # Teach the predictor that requests take far longer than the 5s SLO.
    gateway.predictor.observe(TINYLLAMA.model_id, ttft=4.0, service_time=30.0)
    blocker = gateway.submit(prompt_tokens=32, output_tokens=16, priority="background")
    with pytest.raises(SLOUnattainable):
        gateway.submit(prompt_tokens=16, output_tokens=1, priority="interactive")
    stats = gateway.accountant.classes[PriorityClass.INTERACTIVE]
    assert stats.rejected == {"slo-unattainable": 1}
    sim.run_until(blocker.completion)


# ----------------------------------------------------------------------
# multi-model routing
# ----------------------------------------------------------------------
def test_gateway_routes_across_models():
    model_a = replace(TINYLLAMA, model_id="tinyllama-a")
    model_b = replace(TINYLLAMA, model_id="tinyllama-b")
    system = TZLLMMulti([model_a, model_b], cache_fraction=1.0)
    gateway = ServeGateway(system)
    with pytest.raises(ConfigurationError):
        gateway.submit(prompt_tokens=8)  # model_id required with 2 lanes
    ra = gateway.submit(prompt_tokens=16, output_tokens=2, model_id="tinyllama-a")
    rb = gateway.submit(prompt_tokens=16, output_tokens=2, model_id="tinyllama-b")
    system.sim.run_until(system.sim.all_of([ra.completion, rb.completion]))
    assert ra.done and rb.done
    # Both lanes ran concurrently: b never waited for a's lane.
    assert rb.dispatched_at == rb.arrived_at
