"""Unit tests for admission control: bounded queues, EWMA shedding."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    AdmissionController,
    PriorityClass,
    QueueFull,
    SLOUnattainable,
    ServeRequest,
    ServiceTimePredictor,
    default_policies,
)

MODEL = "m"


def make_request(request_id, priority, model_id=MODEL, at=0.0):
    return ServeRequest(
        request_id=request_id,
        tenant="t",
        model_id=model_id,
        priority=priority,
        prompt_tokens=16,
        output_tokens=8,
        arrived_at=at,
    )


def make_controller(shedding=True, predictor=None):
    return AdmissionController(
        [MODEL], default_policies(), predictor=predictor, shedding=shedding
    )


# ----------------------------------------------------------------------
# predictor
# ----------------------------------------------------------------------
def test_predictor_rejects_bad_alpha():
    with pytest.raises(ConfigurationError):
        ServiceTimePredictor(alpha=0.0)
    with pytest.raises(ConfigurationError):
        ServiceTimePredictor(alpha=1.5)


def test_predictor_unknown_model_predicts_zero():
    predictor = ServiceTimePredictor()
    assert predictor.predicted_ttft("never-seen") == 0.0
    assert predictor.predicted_service("never-seen") == 0.0


def test_predictor_ewma_update():
    predictor = ServiceTimePredictor(alpha=0.3)
    predictor.observe(MODEL, ttft=1.0, service_time=10.0)
    # First observation seeds the average directly.
    assert predictor.predicted_ttft(MODEL) == pytest.approx(1.0)
    predictor.observe(MODEL, ttft=2.0, service_time=20.0)
    assert predictor.predicted_ttft(MODEL) == pytest.approx(1.0 + 0.3 * (2.0 - 1.0))
    assert predictor.predicted_service(MODEL) == pytest.approx(10.0 + 0.3 * (20.0 - 10.0))
    assert predictor.observations == 2


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
def test_queue_full_rejects_with_typed_error():
    ctrl = make_controller()
    capacity = default_policies()[PriorityClass.INTERACTIVE].queue_capacity
    for i in range(capacity):
        ctrl.admit(make_request(i, PriorityClass.INTERACTIVE), 0.0, "priority")
    overflow = make_request(capacity, PriorityClass.INTERACTIVE)
    with pytest.raises(QueueFull) as excinfo:
        ctrl.admit(overflow, 0.0, "priority")
    assert excinfo.value.reason == "queue-full"
    assert excinfo.value.request is overflow
    assert overflow.state == "rejected"
    assert overflow.rejected_reason == "queue-full"
    assert ctrl.rejected_queue_full == 1
    assert ctrl.depth(MODEL, PriorityClass.INTERACTIVE) == capacity


def test_queues_are_bounded_per_class():
    ctrl = make_controller()
    capacity = default_policies()[PriorityClass.INTERACTIVE].queue_capacity
    for i in range(capacity):
        ctrl.admit(make_request(i, PriorityClass.INTERACTIVE), 0.0, "priority")
    # A different class still has room.
    ctrl.admit(make_request(99, PriorityClass.BACKGROUND), 0.0, "priority")
    assert ctrl.depth(MODEL, PriorityClass.BACKGROUND) == 1


# ----------------------------------------------------------------------
# deadline shedding
# ----------------------------------------------------------------------
def test_slo_shedding_uses_predicted_ttft():
    predictor = ServiceTimePredictor()
    predictor.observe(MODEL, ttft=10.0, service_time=12.0)  # SLO is 5s
    ctrl = make_controller(predictor=predictor)
    doomed = make_request(1, PriorityClass.INTERACTIVE)
    with pytest.raises(SLOUnattainable) as excinfo:
        ctrl.admit(doomed, 0.0, "priority")
    assert excinfo.value.reason == "slo-unattainable"
    assert doomed.state == "rejected"
    assert ctrl.rejected_slo == 1


def test_predicted_wait_alone_can_shed():
    ctrl = make_controller()  # predictor knows nothing (predicts 0)
    with pytest.raises(SLOUnattainable):
        ctrl.admit(make_request(1, PriorityClass.INTERACTIVE), 100.0, "priority")


def test_class_without_slo_never_sheds():
    predictor = ServiceTimePredictor()
    predictor.observe(MODEL, ttft=1000.0, service_time=1000.0)
    ctrl = make_controller(predictor=predictor)
    ctrl.admit(make_request(1, PriorityClass.BACKGROUND), 1e6, "priority")
    assert ctrl.depth(MODEL, PriorityClass.BACKGROUND) == 1


def test_shedding_can_be_disabled():
    predictor = ServiceTimePredictor()
    predictor.observe(MODEL, ttft=1000.0, service_time=1000.0)
    ctrl = make_controller(shedding=False, predictor=predictor)
    ctrl.admit(make_request(1, PriorityClass.INTERACTIVE), 1e6, "priority")
    assert ctrl.admitted == 1


# ----------------------------------------------------------------------
# dispatch order
# ----------------------------------------------------------------------
def test_pop_next_priority_most_urgent_first():
    ctrl = make_controller()
    ctrl.admit(make_request(1, PriorityClass.BACKGROUND), 0.0, "priority")
    ctrl.admit(make_request(2, PriorityClass.BATCH), 0.0, "priority")
    ctrl.admit(make_request(3, PriorityClass.INTERACTIVE), 0.0, "priority")
    order = [ctrl.pop_next(MODEL, "priority").request_id for _ in range(3)]
    assert order == [3, 2, 1]
    assert ctrl.pop_next(MODEL, "priority") is None


def test_pop_next_fifo_global_arrival_order():
    ctrl = make_controller()
    ctrl.admit(make_request(1, PriorityClass.BACKGROUND), 0.0, "fifo")
    ctrl.admit(make_request(2, PriorityClass.BATCH), 0.0, "fifo")
    ctrl.admit(make_request(3, PriorityClass.INTERACTIVE), 0.0, "fifo")
    order = [ctrl.pop_next(MODEL, "fifo").request_id for _ in range(3)]
    assert order == [1, 2, 3]


def test_pop_next_rejects_unknown_scheduling():
    ctrl = make_controller()
    with pytest.raises(ConfigurationError):
        ctrl.pop_next(MODEL, "round-robin")


def test_requeue_front_restores_head_position():
    ctrl = make_controller()
    ctrl.admit(make_request(1, PriorityClass.BATCH), 0.0, "priority")
    ctrl.admit(make_request(2, PriorityClass.BATCH), 0.0, "priority")
    victim = ctrl.pop_next(MODEL, "priority")
    assert victim.request_id == 1
    ctrl.requeue_front(victim)
    assert ctrl.pop_next(MODEL, "priority").request_id == 1


def test_queued_ahead_respects_scheduling_mode():
    ctrl = make_controller()
    ctrl.admit(make_request(1, PriorityClass.BACKGROUND), 0.0, "priority")
    ctrl.admit(make_request(2, PriorityClass.BATCH), 0.0, "priority")
    # Under priority, queued batch/background never run before a new
    # interactive arrival; under fifo everything queued runs first.
    ahead_prio = ctrl.queued_ahead(MODEL, PriorityClass.INTERACTIVE, "priority")
    ahead_fifo = ctrl.queued_ahead(MODEL, PriorityClass.INTERACTIVE, "fifo")
    assert [r.request_id for r in ahead_prio] == []
    assert sorted(r.request_id for r in ahead_fifo) == [1, 2]
    # A new background arrival waits behind everything in both modes.
    assert len(ctrl.queued_ahead(MODEL, PriorityClass.BACKGROUND, "priority")) == 2
