"""health() carries a stable gateway/device identity (fleet rollups key on it)."""

from dataclasses import replace

from repro.core.multi import TZLLMMulti
from repro.core.system import TZLLM
from repro.llm import TINYLLAMA
from repro.serve import ServeGateway


def test_gateway_id_defaults_to_device_name():
    system = TZLLM(TINYLLAMA, device_name="dev-3")
    gw = ServeGateway(system)
    assert gw.gateway_id == "dev-3"
    assert gw.health()["gateway_id"] == "dev-3"


def test_gateway_id_derived_from_models_when_unnamed():
    second = replace(TINYLLAMA, model_id="tinyllama-clone", display_name="Clone")
    system = TZLLMMulti([TINYLLAMA, second])
    gw = ServeGateway(system)
    assert gw.gateway_id == "gw:%s+%s" % tuple(
        sorted([TINYLLAMA.model_id, second.model_id])
    )


def test_explicit_gateway_id_wins():
    system = TZLLM(TINYLLAMA, device_name="dev-3")
    gw = ServeGateway(system, gateway_id="edge-7")
    assert gw.health()["gateway_id"] == "edge-7"
