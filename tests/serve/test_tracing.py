"""The serving story lands in the same Chrome trace as the pipeline."""

import json

import pytest

from repro.core import TZLLM
from repro.llm import TINYLLAMA
from repro.serve import ServeGateway
from repro.sim.trace import Tracer


@pytest.fixture(scope="module")
def traced_run():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    sim = system.sim
    tracer = Tracer(sim)
    gateway = ServeGateway(system, tracer=tracer)
    victim = gateway.submit(prompt_tokens=32, output_tokens=48, priority="background")
    sim.run(until=sim.now + 1.0)
    urgent = gateway.submit(prompt_tokens=16, output_tokens=2, priority="interactive")
    sim.run_until(sim.all_of([victim.completion, urgent.completion]))
    return gateway, tracer


def test_gateway_lane_carries_serving_spans(traced_run):
    _gateway, tracer = traced_run
    assert "gateway" in tracer.lanes()
    gateway_spans = [s for s in tracer.spans if s.lane == "gateway"]
    names = {s.name for s in gateway_spans}
    assert any(n.startswith("queue r") for n in names)
    assert any(n.startswith("serve r") for n in names)
    # The preempted attempt is labelled as such.
    assert any("(preempted)" in n for n in names)
    for span in gateway_spans:
        assert span.end >= span.start


def test_queue_depth_mirrored_as_counters(traced_run):
    _gateway, tracer = traced_run
    counter_names = {c.name for c in tracer.counters}
    assert "queue:interactive" in counter_names
    assert any(c.name.startswith("utilization:") for c in tracer.counters)
    depths = [c.value for c in tracer.counters if c.name == "queue:interactive"]
    assert max(depths) >= 1.0  # the urgent request actually queued


def test_preemption_is_an_instant_event(traced_run):
    _gateway, tracer = traced_run
    preempts = [i for i in tracer.instants if i.category == "preempt"]
    assert len(preempts) == 1
    assert preempts[0].lane == "gateway"


def test_chrome_export_is_valid_and_complete(traced_run, tmp_path):
    _gateway, tracer = traced_run
    path = tmp_path / "serve.json"
    tracer.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i", "C"} <= phases
    # The gateway lane is a named thread, and tids are consistent.
    lane_meta = [e for e in events if e["ph"] == "M" and e["args"]["name"] == "gateway"]
    assert len(lane_meta) == 1
    gateway_tid = lane_meta[0]["tid"]
    gateway_spans = [e for e in events if e["ph"] == "X" and e["tid"] == gateway_tid]
    assert gateway_spans
    for event in gateway_spans:
        assert event["dur"] > 0
