"""Acceptance tests on a mixed multi-tenant trace (the ISSUE criteria).

Priority-preemptive dispatch must beat FIFO on interactive p95 TTFT
while giving up at most 10% of batch/background token throughput, and a
saturating burst must shed load with typed errors instead of queueing
without bound.
"""

import pytest

from repro.core import TZLLM
from repro.llm import TINYLLAMA
from repro.serve import (
    AdmissionRejected,
    GatewayConfig,
    LoadGenerator,
    PriorityClass,
    QueueFull,
    ServeGateway,
)
from repro.workloads import TenantSpec, generate_multitenant_trace

TENANTS = [
    TenantSpec(
        "voice",
        TINYLLAMA.model_id,
        "interactive",
        rate_per_hour=40,
        output_tokens=(4, 12),
        burst_factor=6.0,
        burst_period=300.0,
        burst_duration=60.0,
    ),
    TenantSpec(
        "mail",
        TINYLLAMA.model_id,
        "batch",
        rate_per_hour=60,
        workload="personachat",
        output_tokens=(16, 32),
    ),
    TenantSpec(
        "indexer",
        TINYLLAMA.model_id,
        "background",
        rate_per_hour=24,
        workload="droidtask",
        output_tokens=(96, 160),
    ),
]

TRACE = generate_multitenant_trace(1200.0, TENANTS, seed=11)


def run_mode(scheduling, preemption):
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    # Shedding off: both modes must serve the identical request set for a
    # fair latency/throughput comparison.
    config = GatewayConfig(scheduling=scheduling, preemption=preemption, shedding=False)
    gateway = ServeGateway(system, config)
    LoadGenerator(gateway, TRACE).run_blocking()
    return gateway


@pytest.fixture(scope="module")
def fifo():
    return run_mode("fifo", preemption=False)


@pytest.fixture(scope="module")
def priority():
    return run_mode("priority", preemption=True)


def low_priority_throughput(gateway):
    """Completed batch+background tokens per second of serving wall-clock."""
    return sum(
        gateway.accountant.throughput_tokens_per_second(cls)
        for cls in (PriorityClass.BATCH, PriorityClass.BACKGROUND)
    )


def test_trace_is_substantial():
    classes = {e.priority for e in TRACE}
    assert classes == {"interactive", "batch", "background"}
    assert len(TRACE) >= 40


def test_both_modes_serve_every_request(fifo, priority):
    assert len(fifo.completed) == len(TRACE)
    assert len(priority.completed) == len(TRACE)


def test_priority_preemption_beats_fifo_on_interactive_p95_ttft(fifo, priority):
    p95_fifo = fifo.accountant.summary(PriorityClass.INTERACTIVE, "ttft").p95
    p95_priority = priority.accountant.summary(PriorityClass.INTERACTIVE, "ttft").p95
    assert priority.preemption_signals > 0  # the mechanism actually fired
    assert p95_priority < p95_fifo  # the headline claim
    assert p95_priority < 0.5 * p95_fifo  # and not by a hair


def test_batch_throughput_degrades_at_most_10_percent(fifo, priority):
    base = low_priority_throughput(fifo)
    contended = low_priority_throughput(priority)
    assert base > 0
    assert contended >= 0.9 * base


def test_saturating_burst_sheds_load_with_typed_errors():
    system = TZLLM(TINYLLAMA, cache_fraction=1.0)
    system.run_infer(8, 0)
    gateway = ServeGateway(system, GatewayConfig())  # shedding on
    capacity = gateway.config.policies[PriorityClass.INTERACTIVE].queue_capacity
    # Pin the lane, then slam the interactive queue past its bound.
    blocker = gateway.submit(prompt_tokens=32, output_tokens=64, priority="background")
    outcomes = {"admitted": 0, "rejected": []}
    for _ in range(capacity + 4):
        try:
            gateway.submit(prompt_tokens=16, output_tokens=1, priority="interactive")
            outcomes["admitted"] += 1
        except AdmissionRejected as exc:
            outcomes["rejected"].append(exc)
    assert outcomes["admitted"] <= capacity + 1  # bounded queue held
    assert len(outcomes["rejected"]) >= 3
    assert all(isinstance(exc, QueueFull) for exc in outcomes["rejected"])
    stats = gateway.accountant.classes[PriorityClass.INTERACTIVE]
    assert stats.rejected.get("queue-full", 0) == len(outcomes["rejected"])
    system.sim.run_until(blocker.completion)
