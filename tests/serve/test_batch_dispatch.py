"""Batch-aware gateway dispatch: fill, KV budget, park/resume."""

import pytest

from repro.core import BatchConfig, TZLLM
from repro.errors import ConfigurationError
from repro.llm import TINYLLAMA
from repro.serve import GatewayConfig, ServeGateway


def make_system(max_batch_size=2, **kwargs):
    kwargs.setdefault(
        "batch_config", BatchConfig(max_batch_size=max_batch_size, block_tokens=16)
    )
    return TZLLM(TINYLLAMA, **kwargs)


def make_gateway(system, **overrides):
    overrides.setdefault("batching", True)
    overrides.setdefault("shedding", False)
    return ServeGateway(system, GatewayConfig(**overrides))


def drain(gateway, requests):
    for request in requests:
        gateway.sim.run_until(request.completion)


# ----------------------------------------------------------------------
# wiring
# ----------------------------------------------------------------------
def test_batching_requires_batch_engine():
    system = TZLLM(TINYLLAMA)  # no batch_config
    with pytest.raises(ConfigurationError):
        ServeGateway(system, GatewayConfig(batching=True))


def test_lane_capacity_is_the_batch_size():
    system = make_system(max_batch_size=3)
    gateway = make_gateway(system)
    lane = next(iter(gateway.lanes.values()))
    assert lane.capacity == 3


# ----------------------------------------------------------------------
# batch fill
# ----------------------------------------------------------------------
def test_dispatch_fills_the_batch():
    system = make_system(max_batch_size=2)
    gateway = make_gateway(system)
    r1 = gateway.submit(32, 24, priority="batch", tenant="a")
    r2 = gateway.submit(32, 24, priority="batch", tenant="b")
    lane = next(iter(gateway.lanes.values()))
    assert len(lane.running) == 2  # both seated, neither queued
    drain(gateway, [r1, r2])
    assert {r.tenant for r in gateway.completed} == {"a", "b"}
    assert system.ta.batch_engine.occupancy_mean() > 1.0


def test_kv_budget_blocks_head_of_line():
    """A head request that does not fit the block budget queues instead
    of dispatching — and seats once capacity drains."""
    # Budget: 6 blocks of 16 tokens; each request needs 4 blocks (56 tok).
    system = make_system(
        batch_config=BatchConfig(max_batch_size=2, block_tokens=16, budget_blocks=6)
    )
    gateway = make_gateway(system)
    r1 = gateway.submit(32, 24, priority="batch", tenant="a")
    r2 = gateway.submit(32, 24, priority="batch", tenant="b")
    lane = next(iter(gateway.lanes.values()))
    assert len(lane.running) == 1  # the second does not fit: 4+4 > 6
    assert gateway.queue_depth == 1
    drain(gateway, [r1, r2])
    assert len(gateway.completed) == 2
    assert system.ta.batch_engine.pool.reserved == 0


# ----------------------------------------------------------------------
# preemption into a full batch, park, resume
# ----------------------------------------------------------------------
def run_preemption_scenario(out=40, arrive_at=5.0):
    system = make_system(max_batch_size=2)
    gateway = make_gateway(system)
    sim = system.sim
    bg1 = gateway.submit(32, out, priority="background", tenant="bg1")
    bg2 = gateway.submit(32, out, priority="background", tenant="bg2")
    holder = {}

    def later():
        yield sim.timeout(arrive_at)
        holder["rt"] = gateway.submit(16, 8, priority="interactive", tenant="rt")

    sim.process(later())
    drain(gateway, [bg1, bg2])
    drain(gateway, [holder["rt"]])
    return system, gateway


def test_high_priority_preempts_into_full_batch():
    system, gateway = run_preemption_scenario()
    assert gateway.preemption_signals == 1
    victims = [r for r in gateway.completed if r.preemptions > 0]
    assert len(victims) == 1
    assert victims[0].priority.label == "background"
    assert victims[0].attempts == 2
    rt = next(r for r in gateway.completed if r.tenant == "rt")
    assert rt.preemptions == 0 and rt.attempts == 1
    assert system.ta.batch_engine.evictions == 1
    assert system.ta.batch_engine.resumes == 1


def test_parked_victim_wastes_nothing():
    _, gateway = run_preemption_scenario()
    assert gateway.wasted_tokens == 0
    assert gateway.wasted_time == 0.0


def test_resume_restores_exact_parked_block_list():
    system = make_system(max_batch_size=2)
    gateway = make_gateway(system)
    sim = system.sim
    bg1 = gateway.submit(32, 40, priority="background", tenant="bg1")
    bg2 = gateway.submit(32, 40, priority="background", tenant="bg2")
    observed = {}

    def later():
        yield sim.timeout(5.0)
        observed["rt"] = gateway.submit(16, 8, priority="interactive", tenant="rt")
        # Capture the parked checkpoint while the victim is off the batch.
        yield sim.timeout(0.5)
        engine = system.ta.batch_engine
        (parked,) = engine.parked.values()
        observed["checkpoint"] = parked.checkpoint
        observed["pool_used"] = engine.pool.used_blocks

    sim.process(later())
    drain(gateway, [bg1, bg2])
    drain(gateway, [observed["rt"]])
    checkpoint = observed["checkpoint"]
    assert checkpoint.tokens > 32  # prompt + some decoded tokens survived
    assert len(checkpoint.block_ids) == len(set(checkpoint.block_ids))
    assert observed["pool_used"] >= len(checkpoint.block_ids)
    victim = next(r for r in gateway.completed if r.preemptions > 0)
    # The resumed decode continued on the parked blocks: the final token
    # count covers prompt + full output, all grown from that block list.
    assert victim.record.decode.token_ids is not None
    assert len(victim.record.decode.token_ids) == 40
    assert system.ta.batch_engine.pool.used_blocks == 0


def test_preempted_stream_is_identical_to_unpreempted():
    """Determinism across park/resume: the victim's final token stream
    equals an unpreempted run of the same request."""
    system, gateway = run_preemption_scenario(out=40)
    victim = next(r for r in gateway.completed if r.preemptions > 0)
    reference = make_system(max_batch_size=2).run_infer(32, 40)
    assert victim.record.decode.token_ids == reference.decode.token_ids
    # The resumed record reports the original attempt's first token.
    assert victim.first_token_at < victim.record.started_at


def test_ttft_of_resumed_request_reflects_first_attempt():
    _, gateway = run_preemption_scenario()
    victim = next(r for r in gateway.completed if r.preemptions > 0)
    # first_token_at precedes the preemption (the resume never re-ran
    # prefill), so TTFT is attributed to the first attempt.
    assert victim.dispatched_at < victim.first_token_at
    assert victim.first_token_at < victim.finished_at


# ----------------------------------------------------------------------
# satellite 3: EWMA cold start
# ----------------------------------------------------------------------
def test_first_observation_seeds_predictor_directly():
    from repro.serve import ServiceTimePredictor

    predictor = ServiceTimePredictor(alpha=0.05)  # tiny alpha
    predictor.observe("m", ttft=4.0, service_time=9.0)
    # Direct seeding: not 0.05 * 4.0 pulled up from an implicit zero.
    assert predictor.predicted_ttft("m") == pytest.approx(4.0)
    assert predictor.predicted_service("m") == pytest.approx(9.0)
    predictor.observe("m", ttft=6.0, service_time=11.0)
    assert predictor.predicted_ttft("m") == pytest.approx(4.0 + 0.05 * 2.0)


def test_cold_gateway_does_not_spuriously_shed():
    """With no observations, early arrivals must not trip
    SLOUnattainable off a garbage prediction."""
    system = make_system(max_batch_size=2)
    gateway = ServeGateway(system, GatewayConfig(batching=True, shedding=True))
    requests = [
        gateway.submit(16, 4, priority="interactive", tenant="t%d" % i)
        for i in range(3)
    ]
    assert gateway.admission.rejected_slo == 0
    drain(gateway, requests)
    assert len(gateway.completed) == 3
