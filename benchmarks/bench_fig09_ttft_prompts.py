"""Figure 9: TTFT per model, prompt length, and system.

Paper claims: TZ-LLM cuts TTFT by 77.1%~91.1% vs the strawman across all
models and prompt lengths; vs REE-LLM-Flash it pays a bounded overhead
that peaks at medium prompt lengths; vs REE-LLM-Memory the overhead is
large for short prompts (restoration dominates) and shrinks to ~13-19%
at 512 tokens (restoration hides under computation).
"""

import pytest

from repro.analysis import percent_change, reduction, render_table

from _common import (
    PROMPT_LENGTHS,
    SYSTEM_BUILDERS,
    WorstCasePressure,
    bench_models,
    emit_summary,
    measure_ttft,
    once,
    warm,
)


def run_fig09():
    results = {}  # (model, system, T) -> ttft
    for model in bench_models():
        for system_name, builder in SYSTEM_BUILDERS.items():
            system = builder(model)
            warm(system)
            pressure = WorstCasePressure(system, model)
            for T in PROMPT_LENGTHS:
                results[(model.model_id, system_name, T)] = measure_ttft(
                    system, pressure, T
                )
            pressure.stop()
    return results


def test_fig09_ttft_by_prompt_length(benchmark):
    results = once(benchmark, run_fig09)
    models = bench_models()
    rows = []
    for model in models:
        for T in PROMPT_LENGTHS:
            rows.append(
                [model.display_name, T]
                + ["%.2f" % results[(model.model_id, name, T)] for name in SYSTEM_BUILDERS]
            )
    print()
    print(render_table(
        ["model", "prompt"] + list(SYSTEM_BUILDERS), rows,
        title="Figure 9: TTFT (s) by model / prompt length / system"))

    reductions, flash_overheads, memory_overheads = [], [], []
    for model in models:
        for T in PROMPT_LENGTHS:
            tz = results[(model.model_id, "TZ-LLM", T)]
            straw = results[(model.model_id, "Strawman", T)]
            flash = results[(model.model_id, "REE-LLM-Flash", T)]
            mem = results[(model.model_id, "REE-LLM-Memory", T)]
            reductions.append(reduction(straw, tz))
            flash_overheads.append(percent_change(tz, flash))
            memory_overheads.append((model.model_id, T, tz / mem))
    print("\nTZ-LLM vs Strawman: -%.1f%% .. -%.1f%% (paper: -77.1%%..-91.1%%)"
          % (min(reductions), max(reductions)))
    print("TZ-LLM vs REE-LLM-Flash: +%.1f%% .. +%.1f%% (paper: +2.5%%..+55.3%%)"
          % (min(flash_overheads), max(flash_overheads)))

    # Shape claims:
    # (1) the 77-91% reduction band vs the strawman.
    assert 70.0 < min(reductions) and max(reductions) < 95.0
    # (2) bounded overhead vs REE-LLM-Flash, worst at medium prompts.
    assert max(flash_overheads) < 60.0
    for model in models:
        oh = {
            T: percent_change(
                results[(model.model_id, "TZ-LLM", T)],
                results[(model.model_id, "REE-LLM-Flash", T)],
            )
            for T in PROMPT_LENGTHS
        }
        assert oh[128] >= oh[32] - 1.0  # medium >= short (1pt tolerance)
    # (3) vs REE-LLM-Memory: huge at 32 tokens, modest at 512.
    for model in models:
        short = next(r for m, T, r in memory_overheads if m == model.model_id and T == 32)
        long = next(r for m, T, r in memory_overheads if m == model.model_id and T == 512)
        assert short > 2.0  # restoration dominates short prompts
        assert long < 1.35  # hidden under computation at 512 (paper 13-18.9%)

    emit_summary(
        "fig09_ttft_prompts",
        {
            "ttft_s": {
                "%s/%s/%d" % (m, s, T): v for (m, s, T), v in sorted(results.items())
            },
            "min_reduction_pct": min(reductions),
            "max_reduction_pct": max(reductions),
            "max_flash_overhead_pct": max(flash_overheads),
        },
    )
