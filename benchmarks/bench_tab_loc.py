"""§5 implementation size: the minimal-TCB argument, measured.

The paper's co-driver and extend-and-shrink designs exist to keep the
*additional TEE TCB* tiny.  This bench prints the paper's reported line
counts next to this reproduction's own package sizes and checks that the
same structural property holds here: the TEE-side additions are a small
fraction of the codebase, and far below the full NPU driver stack that
the co-driver design avoids importing.
"""

from repro.analysis import PAPER_LOC, count_package_loc, render_table

from _common import emit_summary, once


def run_loc():
    return {
        "total": count_package_loc(),
        "tee": count_package_loc("tee"),
        "ree": count_package_loc("ree"),
        "core": count_package_loc("core"),
    }


def test_tab_loc_inventory(benchmark):
    counts = once(benchmark, run_loc)
    paper_rows = [[k, v] for k, v in PAPER_LOC.items()]
    print()
    print(render_table(["paper component", "LoC"], paper_rows,
                       title="§5: prototype line counts (paper)"))
    package_rows = [
        ["repro (total)", sum(counts["total"].values())],
        ["repro.tee (TEE OS + co-driver + secure memory)", sum(counts["tee"].values())],
        ["repro.ree (Linux-like kernel + drivers)", sum(counts["ree"].values())],
        ["repro.core (pipelined restoration + systems)", sum(counts["core"].values())],
    ]
    tee_npu = sum(v for k, v in counts["tee"].items() if "npu_driver" in k)
    ree_npu = sum(v for k, v in counts["ree"].items() if "npu_driver" in k)
    package_rows.append(["  tee/npu_driver.py (data plane)", tee_npu])
    package_rows.append(["  ree/npu_driver.py (control plane)", ree_npu])
    print()
    print(render_table(["reproduction package", "LoC"], package_rows,
                       title="this reproduction's line counts"))

    total = sum(counts["total"].values())
    tee_total = sum(counts["tee"].values())
    # Structural claims mirroring §5:
    assert tee_total < 0.15 * total  # TEE additions are a small slice
    assert tee_npu < ree_npu * 2.5  # the data plane stays driver-sized
    assert tee_npu < 400  # ~1 kLoC class in the paper; smaller here

    emit_summary(
        "tab_loc",
        {
            "total_loc": total,
            "tee_loc": tee_total,
            "ree_loc": sum(counts["ree"].values()),
            "core_loc": sum(counts["core"].values()),
            "tee_npu_driver_loc": tee_npu,
            "ree_npu_driver_loc": ree_npu,
        },
    )
