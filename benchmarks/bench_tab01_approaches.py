"""Table 1: qualitative comparison of TEE-based model-protection designs.

The table is the paper's positioning argument; this bench renders it and
verifies TZ-LLM's column claims against the *running system* where a
claim is mechanically checkable (accelerator use, end-to-end protection,
dynamic memory scaling, no model modification, quantization).
"""

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table
from repro.errors import AccessDenied
from repro.hw import World

from _common import emit_summary, once

TABLE1 = [
    # approach, accelerator, no-model-mod, quantization, e2e security, memory scaling
    ["Shielding the entire model", "No", "yes", "yes", "yes", "no"],
    ["Obfuscation-based TSLP", "REE only", "yes", "no", "no", "no"],
    ["TSQP", "REE only", "no", "yes", "no", "no"],
    ["TEESlice", "REE only", "no", "yes", "no", "no"],
    ["StrongBox", "TEE-REE sharing", "yes", "yes", "no", "no"],
    ["SecDeep", "TEE only", "yes", "yes", "yes", "no"],
    ["TZ-LLM (ours)", "TEE-REE sharing", "yes", "yes", "yes", "yes"],
]


def run_tab01():
    system = TZLLM(TINYLLAMA, cache_fraction=0.5)
    system.run_infer(8, 0)
    record = system.run_infer(64, 4)
    return system, record


def test_tab01_approach_comparison(benchmark):
    system, record = once(benchmark, run_tab01)
    print()
    print(render_table(
        ["approach", "accelerator", "no model mod", "quantization",
         "end-to-end security", "memory scaling"],
        TABLE1, title="Table 1: TEE-based model protection approaches"))

    # TZ-LLM's checkable claims, verified against the live system:
    # (1) accelerator: secure NPU jobs really ran through the co-driver.
    assert system.stack.tee_npu.secure_jobs_completed > 0
    # (2) quantization: the models are 8-bit quantized.
    assert TINYLLAMA.quant_bits == 8
    # (3) end-to-end security: all parameters live in TZASC-protected
    # memory; nothing is offloaded to unprotected REE memory.
    region = system.ta.params_region
    try:
        system.stack.board.memory.cpu_read(region.base_addr, 16, World.NONSECURE)
        raise AssertionError("parameters readable from the REE")
    except AccessDenied:
        pass
    # (4) memory scaling: the secure region shrank after the inference
    # (partial cache), instead of a static full-size reservation.
    assert 0 < region.protected < system.ta.plan.total_alloc_bytes
    # (5) no model modification: the container holds the unmodified
    # tensor set of the published architecture.
    assert record.pipeline is not None

    emit_summary(
        "tab01_approaches",
        {
            "secure_jobs_completed": system.stack.tee_npu.secure_jobs_completed,
            "quant_bits": TINYLLAMA.quant_bits,
            "protected_bytes": region.protected,
            "planned_alloc_bytes": system.ta.plan.total_alloc_bytes,
        },
    )
