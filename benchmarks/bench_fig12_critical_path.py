"""Figure 12: pipeline critical paths vs achieved TTFT (20% cached).

The maximum of the three per-row totals — loading (I/O), CPU work
(compute + allocation + decryption), and computation (CPU + NPU) — lower-
bounds any schedule.  Paper claim: the greedy policy lands within
0.01%~9.9% of that bound with memory stress, and within 10.4% without
(the I/O-critical worst case for the policy).
"""

import time

import pytest

from repro.analysis import render_table

from _common import (
    PROMPT_LENGTHS,
    WorstCasePressure,
    bench_models,
    build_tzllm,
    emit_summary,
    once,
    warm,
)

CACHE = 0.2


def run_fig12():
    rows = []  # (model, T, stress?, io, cpu, comp, ttft)
    for model in bench_models():
        for stressed in (True, False):
            system = build_tzllm(model, cache_fraction=CACHE)
            warm(system)
            system.run_infer(8, 0)  # establish the 20% cache
            pressure = WorstCasePressure(system, model) if stressed else None
            for T in PROMPT_LENGTHS:
                if pressure is not None:
                    pressure.refresh()
                record = system.run_infer(T, 0)
                pipe = record.pipeline
                rows.append(
                    (
                        model.display_name,
                        T,
                        stressed,
                        pipe.io_path,
                        pipe.cpu_path,
                        pipe.computation_path,
                        pipe.ttft,
                        pipe.lower_bound,
                    )
                )
            if pressure is not None:
                pressure.stop()
    return rows


def test_fig12_scheduling_near_lower_bound(benchmark):
    wall_start = time.monotonic()
    rows = once(benchmark, run_fig12)
    wall_time = time.monotonic() - wall_start
    print()
    print(render_table(
        ["model", "prompt", "stress", "I/O (s)", "CPU (s)", "Computation (s)",
         "TTFT (s)", "bound (s)", "gap"],
        [
            [m, T, "on" if s else "off", "%.2f" % io, "%.2f" % cpu, "%.2f" % comp,
             "%.2f" % ttft, "%.2f" % lb, "%.1f%%" % ((ttft / lb - 1) * 100)]
            for m, T, s, io, cpu, comp, ttft, lb in rows
        ],
        title="Figure 12: critical-path latencies and achieved TTFT (20%% cached)",
    ))

    gaps = []
    for m, T, stressed, io, cpu, comp, ttft, lb in rows:
        gap = ttft / lb - 1.0
        gaps.append(gap)
        assert gap >= -1e-6, "TTFT beat the lower bound?!"
        # Paper: <= 9.9% with stress, <= 10.4% without.  One corner
        # (all three paths nearly equal) fundamentally resists overlap;
        # allow it headroom but keep every point bounded...
        assert gap < 0.35, (m, T, stressed, gap)
    # ...and the policy near-optimal on average.
    assert sum(gaps) / len(gaps) < 0.10
    # With stress the CPU path grows (migration) — the policy's favoured
    # regime; without stress I/O tends to dominate.
    stressed_cpu = [cpu for _m, _t, s, _io, cpu, _c, _tt, _lb in rows if s]
    unstressed_cpu = [cpu for _m, _t, s, _io, cpu, _c, _tt, _lb in rows if not s]
    assert sum(stressed_cpu) > sum(unstressed_cpu)

    emit_summary(
        "fig12_critical_path",
        {
            "rows": [
                {
                    "model": m,
                    "prompt_tokens": T,
                    "stressed": stressed,
                    "io_path_s": io,
                    "cpu_path_s": cpu,
                    "computation_path_s": comp,
                    "ttft_s": ttft,
                    "lower_bound_s": lb,
                    "gap": ttft / lb - 1.0,
                }
                for m, T, stressed, io, cpu, comp, ttft, lb in rows
            ],
            "mean_gap": sum(gaps) / len(gaps),
            "max_gap": max(gaps),
        },
        wall_time_s=wall_time,
    )
