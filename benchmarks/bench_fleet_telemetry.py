"""Fleet telemetry pipeline: observation must be cheap and complete.

The same 8-device fleet as the router benchmark serves a 4-hour
multi-tenant session trace twice — once bare, once with the full
telemetry pipeline attached (virtual-time scraping into the
multi-resolution store, per-tenant usage accounting, tail-based trace
sampling) while a seeded crash and a gray slowdown force hedges and
failovers.  Three claims, all asserted:

1. **cost** — the pipeline consumes at most 5% of the run's wall clock.
   The pipeline self-attributes its host time (``perf_counter`` around
   the scrape loop and the per-ticket accounting/sampling hooks), which
   measures the overhead precisely even on noisy shared hosts where an
   off-vs-on wall-clock diff drowns in scheduler jitter; the raw
   off/on walls are still measured (best of two interleaved runs each)
   and guarded against blowups;
2. **completeness** — every failed, shed, and hedged ticket keeps its
   full trace while the fast path is sampled at or under 10%;
3. **determinism** — the two telemetry-on replays export byte-identical
   time series, tenant accounts, and Chrome traces.
"""

import json
import time

from repro.analysis import render_table
from repro.config import RK3588
from repro.faults import FaultPlan
from repro.fleet import Fleet, FleetLoadGenerator, ResilienceConfig, scale_platform
from repro.llm import TINYLLAMA
from repro.obs import TelemetryConfig
from repro.workloads import (
    FleetTenantSpec,
    generate_fault_schedule,
    generate_fleet_trace,
)

from _common import emit_summary, once

from dataclasses import replace

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")
MODELS = [ASSISTANT, SUMMARIZER]

PLATFORMS = [
    ("hub-0", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("hub-1", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("tablet-0", scale_platform(RK3588, "tablet", cpu=1.25, npu=1.4, mem=1.2, flash=1.2)),
    ("phone-0", RK3588),
    ("phone-1", RK3588),
    ("phone-2", RK3588),
    ("budget-0", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
    ("budget-1", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
]

DURATION = 14400.0  # 4 simulated hours of session starts
TENANTS = [
    FleetTenantSpec(
        "chat",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=900.0,
        mean_turns=5.0,
        mean_think_time=30.0,
        stickiness=1.0,
        prefix_tokens=96,
        prefix_pool=4,
        output_tokens=(4, 12),
    ),
    FleetTenantSpec(
        "copilot",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=700.0,
        mean_turns=4.0,
        mean_think_time=15.0,
        stickiness=0.8,
        prefix_tokens=160,
        prefix_pool=8,
        output_tokens=(2, 8),
    ),
    FleetTenantSpec(
        "mail",
        SUMMARIZER.model_id,
        "batch",
        sessions_per_hour=350.0,
        workload="personachat",
        mean_turns=2.0,
        mean_think_time=60.0,
        stickiness=0.5,
        prefix_tokens=64,
        prefix_pool=2,
        output_tokens=(16, 32),
    ),
    FleetTenantSpec(
        "indexer",
        SUMMARIZER.model_id,
        "background",
        sessions_per_hour=250.0,
        workload="droidtask",
        mean_turns=1.5,
        mean_think_time=45.0,
        stickiness=0.0,
        output_tokens=(24, 48),
    ),
]
TRACE = generate_fleet_trace(DURATION, TENANTS, seed=11)
# 30s is a conventional production scrape interval; at ring capacity
# 720 that retains 6h raw (the whole 4h run), 2.5 days at 10x, 25 days
# at 100x — per series, at a fixed ~48 KiB.
TELEMETRY = TelemetryConfig(scrape_interval=30.0, ring_capacity=720)


def _run(telemetry: bool):
    """One full serve of the trace; returns (fleet, gen, wall_seconds)."""
    wall_start = time.monotonic()
    fleet = Fleet(
        PLATFORMS, MODELS, policy="cache-aware", warm=True,
        resilience=ResilienceConfig(),
    )
    if telemetry:
        fleet.start_telemetry(until=2 * DURATION, config=TELEMETRY)
    plan = FaultPlan(
        11,
        generate_fault_schedule(
            DURATION, list(fleet.devices), seed=11, crashes=1, grays=1
        ),
    )
    fleet.start_resilience(until=2 * DURATION, plan=plan)
    gen = FleetLoadGenerator(fleet.router, TRACE).run_blocking()
    return fleet, gen, time.monotonic() - wall_start


def _exports(fleet):
    telemetry = fleet.telemetry
    return json.dumps(
        {
            "store": telemetry.store.to_dict(),
            "accountant": telemetry.accountant.to_dict(),
            "prometheus": telemetry.accountant.render_prometheus(),
            "chrome": telemetry.sampler.to_chrome_trace(),
            "snapshot": telemetry.snapshot(),
        },
        sort_keys=True,
    )


def run_fleet_telemetry():
    # Interleave off/on measurements and keep the best of each, but
    # retain only the *exports* of earlier runs — a dead fleet's heap
    # (hundreds of thousands of retained objects) degrades every later
    # run's cache locality, which would charge earlier runs' garbage to
    # the pipeline being measured.
    walls = {"off": [], "on": []}
    fracs = []
    exports = []
    last = None
    for _round in range(2):
        fleet, gen, wall = _run(telemetry=False)
        walls["off"].append(wall)
        del fleet, gen
        fleet, gen, wall = _run(telemetry=True)
        walls["on"].append(wall)
        # Pipeline cost paired with its own run's wall clock.
        fracs.append(fleet.telemetry.host_seconds / wall)
        exports.append(_exports(fleet))
        last = (fleet, gen)
    return walls, fracs, exports, last


def test_fleet_telemetry(benchmark):
    assert len(TRACE) >= 25_000
    assert len(PLATFORMS) >= 8

    walls, fracs, exports, last = once(benchmark, run_fleet_telemetry)
    wall_off = min(walls["off"])
    wall_on = min(walls["on"])
    overhead = (wall_on - wall_off) / wall_off

    fleet, gen = last
    telemetry = fleet.telemetry
    summary = gen.summary()
    sampler = telemetry.sampler
    snap = telemetry.snapshot()
    # The pipeline's self-attributed host cost as a fraction of its own
    # run's wall clock; min over rounds discards the round that ate a
    # host scheduling hiccup (the pipeline work per round is identical).
    pipeline_frac = min(fracs)

    print()
    print(telemetry.render_top())
    print()
    print(
        render_table(
            ["mode", "wall best (s)", "runs"],
            [
                ["telemetry off", "%.2f" % wall_off, len(walls["off"])],
                ["telemetry on", "%.2f" % wall_on, len(walls["on"])],
                ["wall diff", "%+.1f%%" % (100 * overhead), ""],
                [
                    "pipeline host time",
                    "%.2fs (%.1f%% of its run)"
                    % (telemetry.host_seconds, 100 * pipeline_frac),
                    "",
                ],
            ],
            title="Collector cost: %d requests, %d devices, %d scrapes"
            % (len(TRACE), len(PLATFORMS), telemetry.collector.scrapes),
        )
    )

    # -- claim 1: cost -------------------------------------------------
    # The precise bound: the pipeline's own host time (scrapes + hooks,
    # self-attributed) stays within 5% of the run it observed.
    assert pipeline_frac <= 0.05, (
        "telemetry pipeline consumed %.1f%% of wall clock > 5%%"
        % (100 * pipeline_frac)
    )
    # And the end-to-end wall diff — noisy on a shared host (off-vs-off
    # repeats here vary by >30%), so it only guards against blowups; the
    # committed baseline carries both walls under a wide gate band.
    assert wall_on <= 2.0 * wall_off, (
        "telemetry-on wall %.1fs vs off %.1fs" % (wall_on, wall_off)
    )

    # -- claim 2: completeness -----------------------------------------
    hedged = sum(1 for t in gen.admitted if t.done and t.hedges > 0)
    failed = sum(1 for t in gen.admitted if t.failed)
    assert sampler.kept.get("hedged", 0) == hedged
    assert sampler.kept.get("failed", 0) == failed
    assert sampler.kept.get("shed", 0) == len(gen.rejected)
    assert hedged + failed > 0  # the seeded faults produced anomalies
    assert sampler.keep_ratio_fast() <= 0.10

    # The store answers operator queries about the run it watched.
    now = fleet.sim.now
    assert telemetry.store.rate("fleet_requests_total", 3600.0, now) > 0.0
    top_tokens = telemetry.accountant.top_k("tokens_out")
    assert len(top_tokens) == len(TENANTS)
    assert [v for _t, v in top_tokens] == sorted(
        [v for _t, v in top_tokens], reverse=True
    )
    assert set(snap["devices"]) == {d for d, _p in PLATFORMS}

    # -- claim 3: determinism ------------------------------------------
    assert exports[0] == exports[1]

    emit_summary(
        "fleet_telemetry",
        {
            "requests": len(TRACE),
            "devices": len(PLATFORMS),
            "duration_s": DURATION,
            "completed": summary["completed"],
            "shed": summary["shed"],
            "scrapes": telemetry.collector.scrapes,
            "series": telemetry.store.series_count(),
            "samples_total": telemetry.collector.samples_total,
            "kept_traces": sampler.kept_total,
            "fast_keep_ratio": sampler.keep_ratio_fast(),
            # Host wall times are environment noise, not simulated
            # results; the gate reads them under a very wide band.
            "pipeline_host_frac": pipeline_frac,
            "overhead_frac": overhead,
            "wall_off_s": wall_off,
            "wall_on_s": wall_on,
            "wall_s": wall_on,
        },
        wall_time_s=wall_on,
    )
