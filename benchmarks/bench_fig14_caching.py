"""Figure 14: the effect of partial parameter caching (claim C3).

Sweeping the cached parameter proportion from 0% to 100%: TTFT
(normalized to the 0% point) falls approximately linearly up to a
threshold, then flattens — beyond the threshold the remaining
restoration already hides under computation.  The threshold grows with
prompt length (more computation to hide under).
"""

import pytest

from repro.analysis import render_table
from repro.core.caching import ThresholdProfiler

from _common import (
    WorstCasePressure,
    bench_models,
    build_tzllm,
    emit_summary,
    once,
    warm,
)

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
PROMPTS = (32, 512)


def run_fig14():
    results = {}  # (model, T, fraction) -> ttft
    for model in bench_models():
        for fraction in FRACTIONS:
            system = build_tzllm(model, cache_fraction=fraction)
            warm(system)
            system.run_infer(8, 0)  # establish the cache prefix
            pressure = WorstCasePressure(system, model)
            for T in PROMPTS:
                pressure.refresh()
                results[(model.model_id, T, fraction)] = system.run_infer(T, 0).ttft
            pressure.stop()
    return results


def test_fig14_partial_parameter_caching(benchmark):
    results = once(benchmark, run_fig14)
    models = bench_models()
    rows = []
    for model in models:
        for T in PROMPTS:
            base = results[(model.model_id, T, 0.0)]
            rows.append(
                [model.display_name, T]
                + ["%.2f" % (results[(model.model_id, T, f)] / base) for f in FRACTIONS]
            )
    print()
    print(render_table(
        ["model", "prompt"] + ["%d%%" % (f * 100) for f in FRACTIONS],
        rows, title="Figure 14: normalized TTFT vs cached parameter proportion"))

    profiler = ThresholdProfiler(tolerance=0.08)
    for model in models:
        for T in PROMPTS:
            series = [results[(model.model_id, T, f)] for f in FRACTIONS]
            # C3: monotone non-increasing in the cache proportion.
            for earlier, later in zip(series, series[1:]):
                assert later <= earlier * 1.01
            knee = profiler.find_knee(list(zip(FRACTIONS, series)))
            # A knee of 0.0 means the curve is already flat: caching buys
            # nothing because restoration hides under compute.
            assert 0.0 <= knee <= 1.0
        # At short prompts restoration dominates TTFT, so caching it away
        # is a big win; at long prompts it already hides under compute and
        # the curve is nearly flat — exactly the Fig. 14 story.
        short = [results[(model.model_id, 32, f)] for f in FRACTIONS]
        long = [results[(model.model_id, 512, f)] for f in FRACTIONS]
        assert short[-1] < 0.6 * short[0]
        assert long[-1] > 0.55 * long[0]
        # Longer prompts flatten earlier (more computation to hide
        # restoration under) => knee(512) <= knee(32).
        knee_short = profiler.find_knee(
            [(f, results[(model.model_id, 32, f)]) for f in FRACTIONS]
        )
        knee_long = profiler.find_knee(
            [(f, results[(model.model_id, 512, f)]) for f in FRACTIONS]
        )
        assert knee_long <= knee_short

    emit_summary(
        "fig14_caching",
        {
            "ttft_s": {
                "%s/%d/%.1f" % (m, T, f): v for (m, T, f), v in sorted(results.items())
            },
        },
    )
