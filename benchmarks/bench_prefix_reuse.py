"""Shared-prefix KV reuse: TTFT vs prefix-hit rate on a fleet trace.

A multi-tenant fleet trace (sticky sessions, block-aligned system
prefixes) is served twice through the same warm batched TZ-LLM device —
once with prefix sharing on (``BatchConfig.prefix_sharing`` +
:class:`~repro.llm.PromptSpec` per request), once with it off — and the
offline :func:`~repro.analysis.analyze_prefix_sharing` replays the same
trace as the predicted ceiling.  Asserted (the ISSUE acceptance):

1. the trace reaches a >= 0.7 online prefix-hit rate;
2. mean TTFT improves >= 30% over the sharing-off run;
3. token streams are byte-identical between the two runs;
4. online hit accounting equals the analyzer's replay, and the measured
   TTFT savings land within a factor of two of its predicted savings;
5. a seeded chaos leg (flash faults + hangs + preemption) drains to
   ``kv_bytes_in_use == 0`` with pool conservation intact.
"""

import time

from repro import TZLLM
from repro.analysis import analyze_prefix_sharing
from repro.core import BatchConfig
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.llm import TINYLLAMA, PromptSpec
from repro.serve import GatewayConfig, ServeGateway
from repro.workloads import FleetTenantSpec, generate_fleet_trace

from _common import emit_summary, once

B = 16
MAX_TOKENS = 2048
DURATION = 900.0  # 15 simulated minutes of session starts

TENANTS = [
    FleetTenantSpec(
        "chat", TINYLLAMA.model_id, "interactive",
        sessions_per_hour=50.0, mean_turns=5.0, mean_think_time=20.0,
        stickiness=1.0, prefix_tokens=96, prefix_pool=1,
        output_tokens=(4, 8),
    ),
    FleetTenantSpec(
        "copilot", TINYLLAMA.model_id, "interactive",
        sessions_per_hour=35.0, mean_turns=4.0, mean_think_time=30.0,
        stickiness=1.0, prefix_tokens=160, prefix_pool=2,
        output_tokens=(4, 8),
    ),
]


def build_trace():
    trace = generate_fleet_trace(DURATION, TENANTS, seed=23)
    return [r for r in trace if r.prompt_tokens + r.output_tokens <= MAX_TOKENS - 64]


def build_system(sharing: bool) -> TZLLM:
    return TZLLM(
        TINYLLAMA,
        max_tokens=MAX_TOKENS,
        cache_fraction=1.0,
        batch_config=BatchConfig(
            max_batch_size=4, block_tokens=B,
            prefix_sharing=sharing, budget_blocks=2048,
        ),
    )


def serve_trace(system, trace, with_specs: bool):
    """Run the trace sequentially; return the per-request records."""
    system.run_infer(16, 2)  # warm the parameter cache (excluded below)
    records = []
    for request in trace:
        spec = PromptSpec.from_fleet_request(request) if with_specs else None
        proc = system.sim.process(
            system.infer(request.prompt_tokens, request.output_tokens, prompt=spec)
        )
        records.append(system.sim.run_until(proc))
    return records


def chaos_leg():
    """Sharing + seeded faults + priority preemption must drain clean."""
    system = TZLLM(
        TINYLLAMA,
        max_tokens=MAX_TOKENS,
        cache_fraction=1.0,
        recovery=RecoveryPolicy.hardened(),
        batch_config=BatchConfig(
            max_batch_size=2, block_tokens=B,
            prefix_sharing=True, budget_blocks=2048,
        ),
    )
    plan = FaultPlan(
        90210,
        [
            FaultSpec("flash.read_error", probability=0.05),
            FaultSpec("flash.bit_flip", probability=0.02),
            FaultSpec("tee.job_hang", probability=0.05, delay=5e-3, jitter=5e-3),
        ],
    )
    plan.injector(system.sim).arm(system)
    gateway = ServeGateway(system, GatewayConfig(batching=True, shedding=False))
    sim = system.sim
    requests = []

    def drive():
        for n in range(16):
            spec = PromptSpec(
                prefix_id="c/p%d" % (n % 2), prefix_tokens=6 * B,
                session_id="c/s%d" % (n % 4), new_tokens=B + (n % 5) * 9,
            )
            priority = ["interactive", "batch", "background"][n % 3]
            try:
                requests.append(gateway.submit(
                    spec.prompt_tokens, 6 + (n % 4) * 6, priority=priority,
                    tenant="c%d" % n, prompt_spec=spec,
                ))
            except Exception:
                pass
            yield sim.timeout(1.2)

    sim.run_until(sim.process(drive()))
    for request in requests:
        sim.run_until(request.completion)
    pool = system.ta.batch_engine.pool
    pool.check_conservation()
    assert pool.active_blocks == 0 and pool.parked_blocks == 0 and pool.reserved == 0
    sim.run_until(sim.process(system.flush_kv()))
    assert pool.used_blocks == 0
    assert system.ta.kv_bytes_in_use == 0
    assert system.ta.data_region.allocated == 0
    return len(requests)


def run_experiment():
    trace = build_trace()
    shared = build_system(sharing=True)
    on = serve_trace(shared, trace, with_specs=True)
    off = serve_trace(build_system(sharing=False), trace, with_specs=False)
    report = analyze_prefix_sharing(
        trace, [TINYLLAMA], shared.stack.spec, block_tokens=B, cache_blocks=None
    )
    chaos_requests = chaos_leg()
    return trace, shared, on, off, report, chaos_requests


def test_prefix_reuse(benchmark):
    wall_start = time.perf_counter()
    trace, shared, on, off, report, chaos_requests = once(benchmark, run_experiment)
    wall_s = time.perf_counter() - wall_start
    assert len(trace) >= 20

    prompt_tokens = sum(r.prompt_tokens for r in trace)
    hit_tokens = sum(r.kv_hit_tokens for r in on)
    hit_rate = hit_tokens / prompt_tokens
    mean_ttft_on = sum(r.ttft for r in on) / len(on)
    mean_ttft_off = sum(r.ttft for r in off) / len(off)
    improvement = 1.0 - mean_ttft_on / mean_ttft_off
    saved_wall = sum(b.ttft - a.ttft for a, b in zip(on, off))

    # 1. the trace is genuinely prefix-heavy.
    assert hit_rate >= 0.7, "online hit rate %.3f below the 0.7 floor" % hit_rate
    # 2. the headline claim: shared prefixes pay for themselves in TTFT.
    assert improvement >= 0.30, (
        "mean TTFT improved only %.1f%% (on %.4fs vs off %.4fs)"
        % (100 * improvement, mean_ttft_on, mean_ttft_off)
    )
    # 3. sharing never changes what any request decodes.
    for a, b in zip(on, off):
        assert a.decode.token_ids == b.decode.token_ids
    # 4. online accounting equals the offline analyzer's replay, and the
    # measured savings land near its prediction.
    assert hit_tokens == report.hit_tokens
    assert 0.5 <= saved_wall / report.saved_prefill_seconds <= 2.0
    # 5. chaos leg drained (asserted inside chaos_leg).
    assert chaos_requests >= 12

    pool = shared.ta.batch_engine.pool
    pool.check_conservation()

    print("prefix-reuse: %d requests, %d prompt tokens" % (len(trace), prompt_tokens))
    print("  online hit rate     %.3f (analyzer %.3f)" % (hit_rate, report.hit_rate))
    print("  mean TTFT on/off    %.4fs / %.4fs  (-%.1f%%)"
          % (mean_ttft_on, mean_ttft_off, 100 * improvement))
    print("  saved wall          %.3fs (analyzer predicted %.3fs)"
          % (saved_wall, report.saved_prefill_seconds))
    print("  pool: cows=%d cached=%d shared_saved=%d"
          % (pool.cows, pool.cached_blocks, pool.shared_saved_blocks))

    emit_summary(
        "prefix_reuse",
        {
            "requests": len(trace),
            "prompt_tokens": prompt_tokens,
            "hit_rate": round(hit_rate, 6),
            "predicted_hit_rate": round(report.hit_rate, 6),
            "hit_tokens": hit_tokens,
            "mean_ttft_on_s": round(mean_ttft_on, 6),
            "mean_ttft_off_s": round(mean_ttft_off, 6),
            "ttft_improvement": round(improvement, 6),
            "saved_wall_s": round(saved_wall, 6),
            "predicted_saved_s": round(report.saved_prefill_seconds, 6),
            "cows": pool.cows,
            "chaos_requests": chaos_requests,
            "wall_s": round(wall_s, 3),
        },
        wall_time_s=wall_s,
    )
