"""§7.1.1 factor ablation: where TZ-LLM's TTFT win comes from.

Starting from the strawman and enabling one mechanism at a time:
NPU support (paper: up to -87.2% TTFT), framework-state checkpointing
(up to -36.8% on what remains), and pipelined restoration (up to -40.6%
on what remains).  Together they produce the headline 77-91% reduction.
"""

import pytest

from repro import PipelineConfig
from repro.analysis import render_table

from _common import (
    WorstCasePressure,
    bench_models,
    build_tzllm,
    emit_summary,
    once,
    warm,
)

STEPS = [
    # name, kwargs
    ("strawman", dict(use_npu=False, decode_use_npu=False, use_checkpoint=False,
                      pipeline_config=PipelineConfig(pipelined=False))),
    ("+NPU", dict(use_npu=True, decode_use_npu="auto", use_checkpoint=False,
                  pipeline_config=PipelineConfig(pipelined=False))),
    ("+checkpoint", dict(use_npu=True, decode_use_npu="auto", use_checkpoint=True,
                         pipeline_config=PipelineConfig(pipelined=False))),
    ("+pipeline (TZ-LLM)", dict(use_npu=True, decode_use_npu="auto", use_checkpoint=True,
                                pipeline_config=PipelineConfig(pipelined=True))),
]

PROMPT = 512


def run_ablation():
    results = {}
    for model in bench_models():
        for step_name, kwargs in STEPS:
            system = build_tzllm(model, **kwargs)
            warm(system)
            pressure = WorstCasePressure(system, model)
            pressure.refresh()
            results[(model.model_id, step_name)] = system.run_infer(PROMPT, 0).ttft
            pressure.stop()
    return results


def test_ablation_feature_factors(benchmark):
    results = once(benchmark, run_ablation)
    models = bench_models()
    rows = []
    for model in models:
        ttfts = [results[(model.model_id, name)] for name, _ in STEPS]
        row = [model.display_name] + ["%.2f" % t for t in ttfts]
        row.append("-%.1f%%" % ((1 - ttfts[-1] / ttfts[0]) * 100))
        rows.append(row)
    print()
    print(render_table(
        ["model"] + [name for name, _ in STEPS] + ["total"],
        rows, title="§7.1.1 ablation: TTFT (s) at %d tokens, feature by feature" % PROMPT))

    for model in models:
        ttfts = [results[(model.model_id, name)] for name, _ in STEPS]
        # Every step helps (checkpoint saves a fixed ~2.1 s; NPU and
        # pipeline save big fractions).
        for before, after in zip(ttfts, ttfts[1:]):
            assert after < before
        # NPU is the dominant factor at long prompts (paper: up to 87.2%).
        npu_gain = 1 - ttfts[1] / ttfts[0]
        assert npu_gain > 0.4
        # The full stack lands in the headline band.
        total_gain = 1 - ttfts[-1] / ttfts[0]
        assert 0.7 < total_gain < 0.95

    emit_summary(
        "ablation_features",
        {
            "ttft_s": {
                "%s/%s" % (m, step): v for (m, step), v in sorted(results.items())
            },
        },
    )
