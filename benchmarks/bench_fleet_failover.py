"""Fleet failover under seeded chaos: crashes + gray failure, mid-trace.

Eight heterogeneous devices serve a three-hour multi-tenant session
trace while a seeded fault plan kills two of them outright (secure-world
state — parked KV, resident parameters — gone; reboot and re-attest to
return) and silently gray-degrades a third (latencies inflate, no error
ever fires).  The same trace and the same fault plan replay twice:

* **hedged** — the full resilience tier: lifecycle-aware eligibility,
  active health probes that quarantine the gray device, budgeted hedged
  retries, free failover for DeviceLost attempts, session re-warm; and
* **no-hedge** — identical, minus the speculative hedges.

The claims: the hedged fleet completes ≥99% of offered requests with
zero failed tickets and zero lost sessions, beats the no-hedge fleet on
interactive p99 TTFT (hedges rescue exactly the requests stuck behind a
dying or gray device), and the whole chaos replay is bit-deterministic —
the hedged run executes twice and must agree on every winner device and
every counter.
"""

import json
import time

from repro.analysis import render_table
from repro.config import RK3588
from repro.faults import FaultPlan
from repro.fleet import Fleet, FleetLoadGenerator, ResilienceConfig, scale_platform
from repro.llm import TINYLLAMA
from repro.workloads import (
    FleetTenantSpec,
    generate_fault_schedule,
    generate_fleet_trace,
)

from _common import emit_summary, once

from dataclasses import replace

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")
MODELS = [ASSISTANT, SUMMARIZER]

PLATFORMS = [
    ("hub-0", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("hub-1", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("tablet-0", scale_platform(RK3588, "tablet", cpu=1.25, npu=1.4, mem=1.2, flash=1.2)),
    ("phone-0", RK3588),
    ("phone-1", RK3588),
    ("phone-2", RK3588),
    ("budget-0", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
    ("budget-1", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
]

DURATION = 10800.0  # 3 simulated hours of session starts
TENANTS = [
    FleetTenantSpec(
        "chat",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=600.0,
        mean_turns=5.0,
        mean_think_time=30.0,
        stickiness=1.0,
        prefix_tokens=96,
        prefix_pool=4,
        output_tokens=(4, 12),
    ),
    FleetTenantSpec(
        "copilot",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=450.0,
        mean_turns=4.0,
        mean_think_time=15.0,
        stickiness=0.8,
        prefix_tokens=160,
        prefix_pool=8,
        output_tokens=(2, 8),
    ),
    FleetTenantSpec(
        "mail",
        SUMMARIZER.model_id,
        "batch",
        sessions_per_hour=250.0,
        workload="personachat",
        mean_turns=2.0,
        mean_think_time=60.0,
        stickiness=0.5,
        prefix_tokens=64,
        prefix_pool=2,
        output_tokens=(16, 32),
    ),
]
TRACE = generate_fleet_trace(DURATION, TENANTS, seed=11)

# The chaos plan: 2 of 8 devices crash mid-trace, a third goes gray at
# 6x latency with no error signal.  Same plan for every configuration.
FAULT_SEED = 23
FAULT_SPECS = generate_fault_schedule(
    DURATION,
    [device_id for device_id, _spec in PLATFORMS],
    seed=FAULT_SEED,
    crashes=2,
    grays=1,
    crash_span=(0.3, 0.7),
    gray_factor=10.0,
)


def run_one(hedging):
    """One full chaos replay; returns (fleet, loadgen, fingerprint)."""
    fleet = Fleet(
        PLATFORMS,
        MODELS,
        policy="cache-aware",
        warm=True,
        resilience=ResilienceConfig(hedging=hedging, hedge_slo_fraction=0.3),
    )
    plan = FaultPlan(FAULT_SEED, FAULT_SPECS)
    fleet.start_resilience(until=4 * DURATION, plan=plan)
    loadgen = FleetLoadGenerator(fleet.router, TRACE).run_blocking()
    fingerprint = json.dumps(
        {
            "winners": [t.device_id for t in loadgen.admitted],
            "states": [t.state for t in loadgen.admitted],
            "summary": loadgen.summary(),
        },
        sort_keys=True,
    )
    return fleet, loadgen, fingerprint


def run_fleet_failover():
    hedged_fleet, hedged_gen, hedged_fp = run_one(hedging=True)
    _fleet2, _gen2, repeat_fp = run_one(hedging=True)
    nohedge_fleet, nohedge_gen, _ = run_one(hedging=False)
    return {
        "hedged": (hedged_fleet, hedged_gen, hedged_fp),
        "repeat": (_fleet2, _gen2, repeat_fp),
        "no-hedge": (nohedge_fleet, nohedge_gen, None),
    }


def test_fleet_failover(benchmark):
    assert len(PLATFORMS) == 8
    assert len(TRACE) >= 15_000
    assert sum(1 for s in FAULT_SPECS if s.site == "fleet.device_crash") == 2

    wall_start = time.monotonic()
    results = once(benchmark, run_fleet_failover)
    wall_time = time.monotonic() - wall_start

    hedged_fleet, hedged_gen, hedged_fp = results["hedged"]
    _f2, _g2, repeat_fp = results["repeat"]
    nohedge_fleet, nohedge_gen, _ = results["no-hedge"]
    hedged = hedged_gen.summary()
    nohedge = nohedge_gen.summary()

    rows = []
    for name, s in (("hedged", hedged), ("no-hedge", nohedge)):
        rows.append(
            [
                name,
                s["completed"],
                s["failed"],
                s["shed"],
                "%.4f" % s["availability"],
                s["hedges"],
                s["failovers"],
                s["drained"],
                "%.3f" % s["ttft_p99"],
                "%.4f" % s["slo_attainment"],
            ]
        )
    print()
    print(
        render_table(
            ["config", "done", "fail", "shed", "avail", "hedges", "fover", "drain", "p99", "slo"],
            rows,
            title="Fleet failover: %d requests, 2/8 crashes + 1 gray, %.0f sim hours"
            % (len(TRACE), DURATION / 3600),
        )
    )

    crashed = [
        d for d in hedged_fleet.devices.values() if d.lifecycle.crashes > 0
    ]
    print(
        "crashed: %s  gray: %s"
        % (
            sorted(d.device_id for d in crashed),
            [s.target for s in FAULT_SPECS if s.site == "fleet.gray_slowdown"],
        )
    )

    for s in (hedged, nohedge):
        # Accounting closes under chaos: every trace event admitted or
        # shed, every admitted ticket terminal.
        assert s["admitted"] + s["shed"] == s["offered"] == len(TRACE)
        assert s["completed"] + s["failed"] == s["admitted"]

    # Both crashes actually happened, recovered, and drained exactly once.
    assert len(crashed) == 2
    for device in crashed:
        assert device.lifecycle.drains == 1
        assert device.lifecycle.state == "up"  # rebooted and re-attested

    # The headline: the resilient fleet rides through 2 crashes + 1 gray
    # device completing >= 99% of all offered requests, losing nothing.
    assert hedged["availability"] >= 0.99
    assert hedged["failed"] == 0  # zero lost requests -> zero lost sessions
    for ticket in hedged_gen.admitted:
        assert ticket.state == "done"

    # Hedging earns its budget: it beats the no-hedge fleet on the
    # interactive tail (the requests stuck behind a dying/gray device).
    assert hedged["hedges"] > 0 and hedged["hedge_wins"] > 0
    assert hedged["ttft_p99"] < nohedge["ttft_p99"]
    # The crash recovery machinery actually ran in both configurations.
    assert hedged["failovers"] > 0 and hedged["rewarm_tokens"] > 0

    # Bit-determinism under chaos: the hedged replay agrees with itself.
    assert hedged_fp == repeat_fp

    emit_summary(
        "fleet_failover",
        {
            "requests": len(TRACE),
            "devices": len(PLATFORMS),
            "duration_s": DURATION,
            "availability": {
                "hedged": hedged["availability"],
                "no_hedge": nohedge["availability"],
            },
            "completed": {
                "hedged": hedged["completed"],
                "no_hedge": nohedge["completed"],
            },
            "shed": {"hedged": hedged["shed"], "no_hedge": nohedge["shed"]},
            "failed": {"hedged": hedged["failed"], "no_hedge": nohedge["failed"]},
            "hedges": hedged["hedges"],
            "hedge_wins": hedged["hedge_wins"],
            "failovers": {
                "hedged": hedged["failovers"],
                "no_hedge": nohedge["failovers"],
            },
            "drained": {"hedged": hedged["drained"], "no_hedge": nohedge["drained"]},
            "rewarm_tokens": {
                "hedged": hedged["rewarm_tokens"],
                "no_hedge": nohedge["rewarm_tokens"],
            },
            "ttft_p99_s": {
                "hedged": hedged["ttft_p99"],
                "no_hedge": nohedge["ttft_p99"],
            },
            "slo_attainment": {
                "hedged": hedged["slo_attainment"],
                "no_hedge": nohedge["slo_attainment"],
            },
            "wall_s": wall_time,
        },
        wall_time_s=wall_time,
    )
