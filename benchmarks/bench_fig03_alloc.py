"""Figure 3: 8 GB allocation time, buddy vs CMA, under memory pressure.

The motivation experiment: 4 KiB buddy allocation is pressure-insensitive
(cheap reclaim at worst), while CMA contiguous allocation must migrate
whatever occupies the region — approaching size/1.9 GB/s single-threaded
and size/3.8 GB/s with 4 threads when the region is fully occupied.
"""

import pytest

from repro import RK3588
from repro.analysis import render_table
from repro.llm import LLAMA3_8B
from repro.stack import build_stack
from repro.workloads import MemoryStress
from repro.config import GB, GiB, MiB

from _common import emit_summary, once

ALLOC_BYTES = 8 * 10 ** 9  # "8 GB for 8-bit Llama-3-8B"
PRESSURES = [0, 4 * GB, 8 * GB, 11 * GB, 13 * GB]
OS_FOOTPRINT = 3 * GiB


def _cma_time(pressure: int, threads: int) -> float:
    stack = build_stack(
        granule=4 * MiB,
        os_footprint=OS_FOOTPRINT,
        cma_regions={"target": ALLOC_BYTES},
    )
    if pressure:
        MemoryStress(stack.kernel, pressure).start()
    region = stack.kernel.cma_regions["target"]
    start = stack.sim.now
    proc = stack.sim.process(
        region.allocate_range(region.start_frame, region.n_frames, threads=threads)
    )
    stack.sim.run_until(proc)
    return stack.sim.now - start


def _buddy_time(pressure: int) -> float:
    stack = build_stack(granule=4 * MiB, os_footprint=OS_FOOTPRINT, cma_regions={})
    if pressure:
        MemoryStress(stack.kernel, pressure).start()
    start = stack.sim.now
    proc = stack.sim.process(stack.kernel.alloc_timed(ALLOC_BYTES, movable=True))
    stack.sim.run_until(proc)
    return stack.sim.now - start


def run_fig03():
    rows = []
    for pressure in PRESSURES:
        rows.append(
            (
                pressure,
                _buddy_time(pressure),
                _cma_time(pressure, threads=1),
                _cma_time(pressure, threads=4),
            )
        )
    return rows


def test_fig03_allocation_time(benchmark):
    rows = once(benchmark, run_fig03)
    print()
    print(render_table(
        ["pressure (GB)", "buddy 4KiB (s)", "CMA 1 thread (s)", "CMA 4 threads (s)"],
        [["%.0f" % (p / GB), "%.3f" % b, "%.3f" % c1, "%.3f" % c4] for p, b, c1, c4 in rows],
        title="Figure 3: allocating %.0f GB for %s" % (ALLOC_BYTES / GB, LLAMA3_8B.display_name),
    ))

    pressures = [r[0] for r in rows]
    buddy = [r[1] for r in rows]
    cma1 = [r[2] for r in rows]
    cma4 = [r[3] for r in rows]

    # Buddy is pressure-insensitive (within the cheap reclaim cost).
    assert max(buddy) < 2.5 * min(buddy)
    assert max(buddy) < 2.0
    # CMA cost grows with pressure.
    assert cma1 == sorted(cma1)
    # At the highest pressure the effective single-thread throughput
    # approaches the measured 1.9 GB/s and 4 threads ~2x that.
    migrated_bound = ALLOC_BYTES / 1.9e9
    assert cma1[-1] == pytest.approx(migrated_bound, rel=0.30)
    assert cma4[-1] == pytest.approx(cma1[-1] / 2.0, rel=0.20)
    # Under low pressure CMA is as cheap as buddy.
    assert cma1[0] < 2 * buddy[0] + 0.5

    emit_summary(
        "fig03_alloc",
        {
            "rows": [
                {
                    "pressure_gb": p / GB,
                    "buddy_s": b,
                    "cma_1thread_s": c1,
                    "cma_4thread_s": c4,
                }
                for p, b, c1, c4 in rows
            ],
        },
    )
