"""Shared harness for the per-figure benchmarks.

Every bench builds the systems it needs through these helpers, runs the
simulated experiment once (simulations are deterministic — wall-clock
variance is measurement noise, not model noise), prints the same
rows/series the paper's figure reports, and asserts the figure's *shape*
claims.

Model selection: by default the sweep covers the smallest and largest
models (TinyLlama-1.1B, Llama-3-8B), which bound every trend.  Set
``REPRO_BENCH_FULL=1`` to run all four paper models.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Callable, Dict, List, Optional

from repro import PAPER_PRESSURE, REELLM, TZLLM, strawman
from repro.llm import LLAMA3_8B, PHI3_MINI, QWEN25_3B, TINYLLAMA, ModelSpec

__all__ = [
    "bench_models",
    "PROMPT_LENGTHS",
    "DECODE_PROMPT",
    "DECODE_TOKENS",
    "build_tzllm",
    "build_strawman",
    "build_ree_memory",
    "build_ree_flash",
    "SYSTEM_BUILDERS",
    "warm",
    "measure_ttft",
    "once",
    "emit_summary",
    "WorstCasePressure",
]

PROMPT_LENGTHS = (32, 128, 512)
DECODE_PROMPT = 128
DECODE_TOKENS = 16  # the paper uses 64; 16 keeps the harness quick and
# decode speed is per-token stable (asserted in tests).


def bench_models() -> List[ModelSpec]:
    if os.environ.get("REPRO_BENCH_FULL"):
        return [TINYLLAMA, QWEN25_3B, PHI3_MINI, LLAMA3_8B]
    return [TINYLLAMA, LLAMA3_8B]


def build_tzllm(model: ModelSpec, **kwargs) -> TZLLM:
    system = TZLLM(model, **kwargs)
    return system


def build_strawman(model: ModelSpec, **kwargs) -> TZLLM:
    return strawman(model, **kwargs)


def build_ree_memory(model: ModelSpec, **kwargs) -> REELLM:
    return REELLM(model, "memory", **kwargs)


def build_ree_flash(model: ModelSpec, **kwargs) -> REELLM:
    return REELLM(model, "flash", **kwargs)


SYSTEM_BUILDERS: Dict[str, Callable[..., object]] = {
    "REE-LLM-Memory": build_ree_memory,
    "REE-LLM-Flash": build_ree_flash,
    "Strawman": build_strawman,
    "TZ-LLM": build_tzllm,
}


def warm(system) -> None:
    """Pay the one-time cold init + checkpoint save off the measured path."""
    if isinstance(system, TZLLM):
        system.run_infer(8, 0)


class WorstCasePressure:
    """§7's worst case: continuous stress-ng pressure per model.

    ``refresh()`` before each measurement models stress-ng's continuous
    mmap/touch/munmap loop re-occupying whatever the previous request's
    migrations vacated (including the revoked CMA region).
    """

    def __init__(self, system, model: ModelSpec):
        self.stress = system.apply_pressure(PAPER_PRESSURE[model.model_id])

    def refresh(self) -> None:
        self.stress.refresh()

    def stop(self) -> None:
        self.stress.stop()


def measure_ttft(system, pressure: "WorstCasePressure", prompt_tokens: int) -> float:
    """One worst-case-pressure TTFT measurement."""
    if pressure is not None:
        pressure.refresh()
    return system.run_infer(prompt_tokens, 0).ttft


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return it.

    The simulated experiment is deterministic; repeated rounds would just
    re-measure Python overhead.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def emit_summary(name: str, metrics: Dict[str, object], wall_time_s: Optional[float] = None) -> str:
    """Write a machine-readable bench summary to ``bench_results/``.

    The figure benches print human tables; CI and trend tracking want the
    same numbers as stable JSON.  Writes
    ``bench_results/BENCH_<name>.json`` next to the repo root (created on
    demand) with the metrics dict, optional wall time, and the git
    revision the run came from.  Returns the path written.
    """
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "bench_results")
    out_dir = os.path.abspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "name": name,
        "metrics": metrics,
        "wall_time_s": wall_time_s,
        "git_rev": _git_rev(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    path = os.path.join(out_dir, "BENCH_%s.json" % name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
