"""Fleet routing tier: placement policy shoot-out at cluster scale.

Eight heterogeneous devices (hub-, tablet-, phone- and budget-class
platforms scaled from the RK3588 reference) serve a 14-hour multi-tenant
session trace — sticky interactive chat, shared-prefix copilot bursts,
batch summarization, background indexing — three times, once per
placement policy.  The claim: placement that *sees the caches* (session
KV residency, shared-prefix reuse, model warmth) beats load-blind
random placement on both tail TTFT and SLO attainment, because a turn
routed back to the device that still holds its session's KV prefills
only the new tokens instead of replaying the whole conversation.

Everything runs on one virtual clock through the real serving gateways
(admission, bounded queues, deadline shedding, breakers), so shed and
spillover counts are part of the comparison, not noise.
"""

import time

from repro.analysis import render_table
from repro.config import RK3588
from repro.fleet import Fleet, FleetLoadGenerator, scale_platform
from repro.llm import TINYLLAMA
from repro.workloads import FleetTenantSpec, generate_fleet_trace

from _common import emit_summary, once

from dataclasses import replace

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")
MODELS = [ASSISTANT, SUMMARIZER]

# Eight devices, four hardware bins: the heterogeneity the router must
# exploit (hubs absorb spillover; budget devices only pay off on hits).
PLATFORMS = [
    ("hub-0", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("hub-1", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("tablet-0", scale_platform(RK3588, "tablet", cpu=1.25, npu=1.4, mem=1.2, flash=1.2)),
    ("phone-0", RK3588),
    ("phone-1", RK3588),
    ("phone-2", RK3588),
    ("budget-0", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
    ("budget-1", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
]

DURATION = 50400.0  # 14 simulated hours of session starts
TENANTS = [
    FleetTenantSpec(
        "chat",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=900.0,
        mean_turns=5.0,
        mean_think_time=30.0,
        stickiness=1.0,
        prefix_tokens=96,
        prefix_pool=4,
        output_tokens=(4, 12),
    ),
    FleetTenantSpec(
        "copilot",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=700.0,
        mean_turns=4.0,
        mean_think_time=15.0,
        stickiness=0.8,
        prefix_tokens=160,
        prefix_pool=8,
        output_tokens=(2, 8),
    ),
    FleetTenantSpec(
        "mail",
        SUMMARIZER.model_id,
        "batch",
        sessions_per_hour=350.0,
        workload="personachat",
        mean_turns=2.0,
        mean_think_time=60.0,
        stickiness=0.5,
        prefix_tokens=64,
        prefix_pool=2,
        output_tokens=(16, 32),
    ),
    FleetTenantSpec(
        "indexer",
        SUMMARIZER.model_id,
        "background",
        sessions_per_hour=250.0,
        workload="droidtask",
        mean_turns=1.5,
        mean_think_time=45.0,
        stickiness=0.0,
        output_tokens=(24, 48),
    ),
]
TRACE = generate_fleet_trace(DURATION, TENANTS, seed=11)

POLICIES = ["random", "least-outstanding", "cache-aware"]


def run_fleet_router():
    results = {}
    for policy in POLICIES:
        fleet = Fleet(PLATFORMS, MODELS, policy=policy, warm=True)
        loadgen = FleetLoadGenerator(fleet.router, TRACE).run_blocking()
        results[policy] = (fleet, loadgen.summary())
    return results


def test_fleet_router(benchmark):
    # The acceptance bar: cluster scale, not a toy — 10^5+ requests
    # across 8 heterogeneous devices on one virtual clock.
    assert len(TRACE) >= 100_000
    assert len(PLATFORMS) >= 8

    wall_start = time.monotonic()
    results = once(benchmark, run_fleet_router)
    wall_time = time.monotonic() - wall_start

    rows = []
    for policy, (_fleet, s) in results.items():
        rows.append(
            [
                policy,
                s["completed"],
                s["shed"],
                s["spillover"],
                "%.3f" % s["throughput_rps"],
                "%.3f" % s["ttft_p50"],
                "%.3f" % s["ttft_p99"],
                "%.4f" % s["slo_attainment"],
            ]
        )
    print()
    print(
        render_table(
            ["policy", "done", "shed", "spill", "rps", "ttft p50", "ttft p99", "slo"],
            rows,
            title="Fleet routing: %d requests, %d devices, %.0f sim hours"
            % (len(TRACE), len(PLATFORMS), DURATION / 3600),
        )
    )
    spread_rows = []
    for policy, (_fleet, s) in results.items():
        per_device = s["per_device"]
        spread_rows.append(
            [policy]
            + [per_device.get(device_id, 0) for device_id, _spec in PLATFORMS]
        )
    print(
        render_table(
            ["policy"] + [device_id for device_id, _spec in PLATFORMS],
            spread_rows,
            title="Placement spread (admitted requests per device)",
        )
    )

    for policy, (_fleet, s) in results.items():
        # Accounting closes: every trace event was admitted or shed, and
        # every admitted request finished (no stuck processes).
        assert s["admitted"] + s["shed"] == s["offered"] == len(TRACE)
        assert s["completed"] + s["failed"] == s["admitted"]
        assert s["failed"] == 0

    random_s = results["random"][1]
    cache_s = results["cache-aware"][1]
    # The headline: cache/affinity-aware placement beats random routing
    # on BOTH the interactive tail a user feels and SLO attainment.
    assert cache_s["ttft_p99"] < random_s["ttft_p99"]
    assert cache_s["slo_attainment"] > random_s["slo_attainment"]
    # ...and it does so while completing at least as much work.
    assert cache_s["completed"] >= random_s["completed"]

    emit_summary(
        "fleet_router",
        {
            "requests": len(TRACE),
            "devices": len(PLATFORMS),
            "duration_s": DURATION,
            "completed": {p: s["completed"] for p, (_f, s) in results.items()},
            "shed": {p: s["shed"] for p, (_f, s) in results.items()},
            "spillover": {p: s["spillover"] for p, (_f, s) in results.items()},
            "throughput_rps": {
                p: s["throughput_rps"] for p, (_f, s) in results.items()
            },
            "ttft_p50_s": {p: s["ttft_p50"] for p, (_f, s) in results.items()},
            "ttft_p99_s": {p: s["ttft_p99"] for p, (_f, s) in results.items()},
            "slo_attainment": {
                p: s["slo_attainment"] for p, (_f, s) in results.items()
            },
            # Host wall time is environment noise, not a simulated result;
            # the regression gate reads it under a very wide tolerance.
            "wall_s": wall_time,
        },
        wall_time_s=wall_time,
    )
