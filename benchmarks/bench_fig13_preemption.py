"""Figure 13: the effect of preemptive pipeline scheduling.

Three configurations per (model, prompt length): no pipelining at all,
priority pipeline without preemption, and the full preemptive pipeline.
Paper claims: the pipeline alone cuts TTFT by up to 31.7%; enabling
micro-operator preemption cuts up to a further 16.2% by eliminating the
bubbles that operator misalignment leaves.
"""

import pytest

from repro import PipelineConfig
from repro.analysis import render_table

from _common import (
    PROMPT_LENGTHS,
    WorstCasePressure,
    bench_models,
    build_tzllm,
    emit_summary,
    once,
    warm,
)

CONFIGS = {
    "no-pipeline": PipelineConfig(pipelined=False),
    "pipeline": PipelineConfig(pipelined=True, preemptive=False),
    "pipeline+preempt": PipelineConfig(pipelined=True, preemptive=True),
}


def run_fig13():
    results = {}
    for model in bench_models():
        for config_name, config in CONFIGS.items():
            system = build_tzllm(model, pipeline_config=config)
            warm(system)
            pressure = WorstCasePressure(system, model)
            for T in PROMPT_LENGTHS:
                pressure.refresh()
                record = system.run_infer(T, 0)
                results[(model.model_id, config_name, T)] = record
            pressure.stop()
    return results


def test_fig13_preemptive_scheduling(benchmark):
    results = once(benchmark, run_fig13)
    models = bench_models()
    rows = []
    for model in models:
        for T in PROMPT_LENGTHS:
            base = results[(model.model_id, "no-pipeline", T)].ttft
            pipe = results[(model.model_id, "pipeline", T)].ttft
            full = results[(model.model_id, "pipeline+preempt", T)].ttft
            rows.append(
                [model.display_name, T, "%.2f" % base, "%.2f" % pipe, "%.2f" % full,
                 "-%.1f%%" % ((1 - pipe / base) * 100),
                 "-%.1f%%" % ((1 - full / max(pipe, 1e-9)) * 100)]
            )
    print()
    print(render_table(
        ["model", "prompt", "no pipeline", "pipeline", "+preempt",
         "pipeline gain", "preempt gain"],
        rows, title="Figure 13: preemptive pipeline scheduling (TTFT, s)"))

    for model in models:
        for T in PROMPT_LENGTHS:
            base = results[(model.model_id, "no-pipeline", T)].ttft
            pipe = results[(model.model_id, "pipeline", T)].ttft
            full = results[(model.model_id, "pipeline+preempt", T)].ttft
            # Pipelining always helps; preemption never hurts.
            assert pipe < base
            assert full <= pipe * 1.001
            # Preemption points actually fired in the preemptive runs.
            if T >= 128:
                assert results[(model.model_id, "pipeline+preempt", T)].pipeline.preemptions > 0
    # The pipeline gain reaches the paper's tens-of-percent class
    # somewhere in the sweep.
    best_gain = max(
        1 - results[(m.model_id, "pipeline", T)].ttft /
        results[(m.model_id, "no-pipeline", T)].ttft
        for m in models for T in PROMPT_LENGTHS
    )
    assert best_gain > 0.25  # paper: up to 31.7%

    emit_summary(
        "fig13_preemption",
        {
            "ttft_s": {
                "%s/%s/%d" % (m, c, T): record.ttft
                for (m, c, T), record in sorted(results.items())
            },
            "best_pipeline_gain": best_gain,
        },
    )
