"""Figure 10: average TTFT on UltraChat, PersonaChat, DroidTask.

Paper claims (C1): 76.1%~90.9% TTFT reduction vs the strawman;
5.2%~28.3% geomean slowdown vs REE-LLM-Flash; vs REE-LLM-Memory
2.5x~3.7x on UltraChat (short prompts) but only 8.1%~21.2% on
PersonaChat/DroidTask (long prompts hide restoration).
"""

import pytest

from repro.analysis import geomean, mean, reduction, render_table
from repro.workloads import benchmark_names, generate_prompts

from _common import (
    SYSTEM_BUILDERS,
    WorstCasePressure,
    bench_models,
    emit_summary,
    once,
    warm,
)

PROMPTS_PER_BENCHMARK = 4


def run_fig10():
    results = {}  # (model, system, benchmark) -> [ttft per prompt]
    prompt_sets = {
        name: generate_prompts(name, PROMPTS_PER_BENCHMARK) for name in benchmark_names()
    }
    for model in bench_models():
        for system_name, builder in SYSTEM_BUILDERS.items():
            system = builder(model)
            warm(system)
            pressure = WorstCasePressure(system, model)
            for bench_name, prompts in prompt_sets.items():
                ttfts = []
                for prompt in prompts:
                    pressure.refresh()
                    ttfts.append(system.run_infer(prompt.tokens, 0).ttft)
                results[(model.model_id, system_name, bench_name)] = ttfts
            pressure.stop()
    return results


def test_fig10_ttft_real_benchmarks(benchmark):
    results = once(benchmark, run_fig10)
    models = bench_models()
    rows = []
    for model in models:
        for bench_name in benchmark_names():
            rows.append(
                [model.display_name, bench_name]
                + [
                    "%.2f" % mean(results[(model.model_id, s, bench_name)])
                    for s in SYSTEM_BUILDERS
                ]
            )
    print()
    print(render_table(
        ["model", "benchmark"] + list(SYSTEM_BUILDERS), rows,
        title="Figure 10: average TTFT (s) on real-world benchmarks"))

    for model in models:
        for bench_name in benchmark_names():
            tz = results[(model.model_id, "TZ-LLM", bench_name)]
            straw = results[(model.model_id, "Strawman", bench_name)]
            mem = results[(model.model_id, "REE-LLM-Memory", bench_name)]
            red = reduction(mean(straw), mean(tz))
            # C1: the 76.1-90.9% reduction band (with slack for scale).
            assert 68.0 < red < 95.0, (model.model_id, bench_name, red)
            ratio = geomean([t / m for t, m in zip(tz, mem)])
            if bench_name == "ultrachat":
                # Short prompts: restoration dominates (paper 2.5x-3.7x).
                assert ratio > 1.8
            else:
                # Long prompts hide restoration (paper 8.1%-21.2%).
                assert ratio < 1.6
    # UltraChat is TZ-LLM's worst benchmark vs REE-LLM-Memory.
    for model in models:
        ratios = {
            b: geomean([
                t / m for t, m in zip(
                    results[(model.model_id, "TZ-LLM", b)],
                    results[(model.model_id, "REE-LLM-Memory", b)],
                )
            ])
            for b in benchmark_names()
        }
        assert max(ratios, key=ratios.get) == "ultrachat"

    emit_summary(
        "fig10_ttft_benchmarks",
        {
            "mean_ttft_s": {
                "%s/%s/%s" % (m, s, b): mean(v) for (m, s, b), v in sorted(results.items())
            },
        },
    )
