"""The memory observatory must watch without weighing.

A 6-device fleet serves a 2-hour multi-tenant session trace twice —
once with the telemetry pipeline alone, once with the secure-memory
observatory riding it (:meth:`Fleet.start_memory_view`): per-device
configured/live/parked/stranded rollups refreshed inside every scrape,
the stranded byte-second integral, and per-tenant secure byte-second
meters.  The offline prefix-sharing analyzer then replays the same
trace.  Asserted:

1. **cost** — the observatory's self-attributed host time stays within
   5% of its own run's wall clock (and the off-vs-on walls, noisy on a
   shared host, are guarded against blowups);
2. **signal** — the fleet trace strands capacity (a nonzero stranded
   byte-second integral: the session LRU evicts below the backing
   high-water) and the analyzer finds a real sharing opportunity
   (nonzero potential hit rate and saved prefill seconds);
3. **determinism** — two observatory-on replays export byte-identical
   memory rollups and analyzer reports.
"""

import json
import time

from repro.analysis import analyze_prefix_sharing, render_table
from repro.config import RK3588
from repro.fleet import Fleet, FleetLoadGenerator, scale_platform
from repro.llm import TINYLLAMA
from repro.obs import TelemetryConfig
from repro.workloads import FleetTenantSpec, generate_fleet_trace

from _common import emit_summary, once

from dataclasses import replace

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")
MODELS = [ASSISTANT, SUMMARIZER]

PLATFORMS = [
    ("hub-0", scale_platform(RK3588, "hub", cpu=1.6, npu=1.8, mem=1.5, flash=1.6)),
    ("tablet-0", scale_platform(RK3588, "tablet", cpu=1.25, npu=1.4, mem=1.2, flash=1.2)),
    ("phone-0", RK3588),
    ("phone-1", RK3588),
    ("budget-0", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
    ("budget-1", scale_platform(RK3588, "budget", cpu=0.7, npu=0.6, mem=0.75, flash=0.7)),
]

DURATION = 7200.0  # 2 simulated hours of session starts
TENANTS = [
    FleetTenantSpec(
        "chat",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=900.0,
        mean_turns=5.0,
        mean_think_time=30.0,
        stickiness=1.0,
        prefix_tokens=96,
        prefix_pool=4,
        output_tokens=(4, 12),
    ),
    FleetTenantSpec(
        "copilot",
        ASSISTANT.model_id,
        "interactive",
        sessions_per_hour=700.0,
        mean_turns=4.0,
        mean_think_time=15.0,
        stickiness=0.8,
        prefix_tokens=160,
        prefix_pool=8,
        output_tokens=(2, 8),
    ),
    FleetTenantSpec(
        "mail",
        SUMMARIZER.model_id,
        "batch",
        sessions_per_hour=350.0,
        workload="personachat",
        mean_turns=2.0,
        mean_think_time=60.0,
        stickiness=0.5,
        prefix_tokens=64,
        prefix_pool=2,
        output_tokens=(16, 32),
    ),
]
TRACE = generate_fleet_trace(DURATION, TENANTS, seed=17)
TELEMETRY = TelemetryConfig(scrape_interval=15.0, ring_capacity=720)
# Small per-device session LRU: evictions below the backing high-water
# are what strand capacity at the fleet tier.
SESSION_CAPACITY = 16


def _run(memview: bool):
    """One full serve of the trace; returns (fleet, wall_seconds)."""
    wall_start = time.monotonic()
    fleet = Fleet(
        PLATFORMS, MODELS, policy="cache-aware", warm=True,
        session_capacity=SESSION_CAPACITY,
    )
    fleet.start_telemetry(until=2 * DURATION, config=TELEMETRY)
    if memview:
        fleet.start_memory_view()
    FleetLoadGenerator(fleet.router, TRACE).run_blocking()
    return fleet, time.monotonic() - wall_start


def _exports(fleet, report):
    return json.dumps(
        {
            "memory": fleet.memory.to_dict(),
            "memtop": fleet.memory.render_memtop(),
            "snapshot_memory": fleet.telemetry.snapshot()["memory"],
            "prefix_share": report.to_dict(),
        },
        sort_keys=True,
    )


def run_kv_memview():
    # Interleaved off/on, best of two (same discipline as the telemetry
    # benchmark: dead fleets' heaps must not bill later rounds).
    walls = {"off": [], "on": []}
    fracs = []
    exports = []
    last = None
    for _round in range(2):
        fleet, wall = _run(memview=False)
        walls["off"].append(wall)
        del fleet
        fleet, wall = _run(memview=True)
        walls["on"].append(wall)
        fracs.append(fleet.memory.host_seconds / wall)
        report = analyze_prefix_sharing(TRACE, MODELS, RK3588)
        exports.append(_exports(fleet, report))
        last = (fleet, report)
    return walls, fracs, exports, last


def test_kv_memview(benchmark):
    assert len(TRACE) >= 10_000
    assert len(PLATFORMS) >= 6

    walls, fracs, exports, last = once(benchmark, run_kv_memview)
    wall_off = min(walls["off"])
    wall_on = min(walls["on"])
    overhead = (wall_on - wall_off) / wall_off
    view_frac = min(fracs)

    fleet, report = last
    view = fleet.memory

    print()
    print(view.render_memtop())
    print()
    print(report.render())
    print()
    print(
        render_table(
            ["mode", "wall best (s)", "runs"],
            [
                ["memory view off", "%.2f" % wall_off, len(walls["off"])],
                ["memory view on", "%.2f" % wall_on, len(walls["on"])],
                ["wall diff", "%+.1f%%" % (100 * overhead), ""],
                [
                    "observatory host time",
                    "%.3fs (%.2f%% of its run)"
                    % (view.host_seconds, 100 * view_frac),
                    "",
                ],
            ],
            title="Observatory cost: %d requests, %d devices, %d refreshes"
            % (len(TRACE), len(PLATFORMS), view.refreshes),
        )
    )

    # -- claim 1: cost -------------------------------------------------
    assert view_frac <= 0.05, (
        "memory observatory consumed %.2f%% of wall clock > 5%%"
        % (100 * view_frac)
    )
    assert wall_on <= 2.0 * wall_off, (
        "observatory-on wall %.1fs vs off %.1fs" % (wall_on, wall_off)
    )

    # -- claim 2: signal -----------------------------------------------
    assert view.stranded_byte_seconds > 0.0  # the acceptance integral
    store = fleet.telemetry.store
    assert store.latest("fleet_mem_stranded_byte_seconds_total") > 0.0
    for device_id, _platform in PLATFORMS:
        assert store.latest("fleet_mem_configured_bytes", device=device_id) > 0.0
    assert view.tenant_byte_seconds  # tenants priced
    assert report.hit_rate > 0.0
    assert report.saved_prefill_seconds > 0.0
    assert report.ttft_delta(50) >= 0.0

    # -- claim 3: determinism ------------------------------------------
    assert exports[0] == exports[1]

    emit_summary(
        "kv_memview",
        {
            "requests": len(TRACE),
            "devices": len(PLATFORMS),
            "duration_s": DURATION,
            "refreshes": view.refreshes,
            "stranded_gib_s": view.stranded_byte_seconds / (1024.0 ** 3),
            "prefix_hit_rate": report.hit_rate,
            "saved_prefill_s": report.saved_prefill_seconds,
            "ttft_delta_p50_s": report.ttft_delta(50),
            # Host wall times are environment noise, not simulated
            # results; the gate reads them under a very wide band.
            "view_host_frac": view_frac,
            "overhead_frac": overhead,
            "wall_off_s": wall_off,
            "wall_on_s": wall_on,
            "wall_s": wall_on,
        },
        wall_time_s=wall_on,
    )
