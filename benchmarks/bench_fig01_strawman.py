"""Figure 1: the strawman cold-start workflow and its overheads.

Reproduces the timeline boxes of Fig. 1 for 8-bit Llama-3-8B with a
512-token prompt under memory pressure: framework init (paper: 2.3 s),
secure-memory allocation (up to 4.2 s), parameter load + decryption
(~4 s + 0.9 s), and the CPU-only prefill (164 s).
"""

import pytest

from repro import PAPER_PRESSURE
from repro.analysis import render_table
from repro.llm import LLAMA3_8B

from _common import build_strawman, emit_summary, once


def run_strawman_breakdown():
    system = build_strawman(LLAMA3_8B)
    system.apply_pressure(PAPER_PRESSURE[LLAMA3_8B.model_id])
    record = system.run_infer(512, 0)
    return system, record


def test_fig01_strawman_cold_start(benchmark):
    system, record = once(benchmark, run_strawman_breakdown)
    pipe = record.pipeline
    rows = [
        ["framework init", 2.3, record.init_time],
        ["KV/activation alloc", 0.1, record.data_setup_time],
        ["secure memory alloc (CMA)", "<= 4.2", pipe.alloc_time],
        ["load params (flash)", "~4.0", pipe.io_time],
        ["decrypt params", 0.9, pipe.decrypt_time],
        ["prefill (CPU only)", 164.0, pipe.cpu_compute_time],
        ["TOTAL TTFT", "~175", record.ttft],
    ]
    print()
    print(render_table(["step", "paper (s)", "measured (s)"], rows,
                       title="Figure 1: strawman workflow, Llama-3-8B, 512 tokens"))

    assert record.init_time == pytest.approx(2.3, rel=0.05)
    assert pipe.io_time == pytest.approx(8.03e9 / 2.0e9, rel=0.15)
    assert pipe.decrypt_time == pytest.approx(0.9, rel=0.15)
    assert 0.5 < pipe.alloc_time < 4.5  # migration volume depends on spill
    assert pipe.cpu_compute_time == pytest.approx(164.0, rel=0.05)
    # The strawman never touches the NPU.
    assert pipe.npu_compute_time == 0.0
    # Restoration overhead beyond compute is in the paper's ~11.6 s class.
    restore = record.ttft - pipe.cpu_compute_time
    assert 7.0 < restore < 16.0

    emit_summary(
        "fig01_strawman",
        {
            "init_time_s": record.init_time,
            "data_setup_time_s": record.data_setup_time,
            "alloc_time_s": pipe.alloc_time,
            "io_time_s": pipe.io_time,
            "decrypt_time_s": pipe.decrypt_time,
            "cpu_compute_time_s": pipe.cpu_compute_time,
            "ttft_s": record.ttft,
            "restore_overhead_s": restore,
        },
    )
