"""Serving gateway: FIFO vs priority-preemptive dispatch under load.

A two-model deployment (assistant + summarizer TAs) serves a mixed
multi-tenant trace — bursty interactive chat, steady batch
summarization, long background indexing — twice: once with global FIFO
dispatch and once with priority scheduling plus token-boundary
preemption.  The claim mirrors Fig. 13 lifted to request granularity:
preemption collapses interactive tail latency (the p95 TTFT an actual
user feels) while costing the preempted classes almost nothing, because
preempted requests retry against still-cached parameters.
"""

import time

import pytest

from dataclasses import replace

from repro.analysis import render_table
from repro.core.multi import TZLLMMulti
from repro.llm import TINYLLAMA
from repro.serve import (
    GatewayConfig,
    LoadGenerator,
    PriorityClass,
    ServeGateway,
)
from repro.workloads import TenantSpec, generate_multitenant_trace

from _common import emit_summary, once

ASSISTANT = replace(TINYLLAMA, model_id="assistant-1.1b")
SUMMARIZER = replace(TINYLLAMA, model_id="summarizer-1.1b")

DURATION = 1800.0
TENANTS = [
    TenantSpec(
        "voice",
        ASSISTANT.model_id,
        "interactive",
        rate_per_hour=40,
        output_tokens=(4, 12),
        burst_factor=6.0,
        burst_period=300.0,
        burst_duration=60.0,
    ),
    TenantSpec(
        "keyboard",
        ASSISTANT.model_id,
        "interactive",
        rate_per_hour=30,
        output_tokens=(2, 6),
    ),
    TenantSpec(
        "mail",
        SUMMARIZER.model_id,
        "batch",
        rate_per_hour=60,
        workload="personachat",
        output_tokens=(16, 32),
    ),
    TenantSpec(
        "indexer",
        ASSISTANT.model_id,
        "background",
        rate_per_hour=24,
        workload="droidtask",
        output_tokens=(96, 160),
    ),
    TenantSpec(
        "embedder",
        SUMMARIZER.model_id,
        "background",
        rate_per_hour=20,
        workload="droidtask",
        output_tokens=(64, 128),
    ),
]
TRACE = generate_multitenant_trace(DURATION, TENANTS, seed=11)

MODES = {
    "fifo": GatewayConfig(scheduling="fifo", preemption=False, shedding=False),
    "priority+preempt": GatewayConfig(
        scheduling="priority", preemption=True, shedding=False
    ),
}


def run_serve_gateway():
    results = {}
    for mode, config in MODES.items():
        system = TZLLMMulti([ASSISTANT, SUMMARIZER], cache_fraction=1.0)
        for model_id in system.tas:
            system.run_infer(model_id, 8, 0)  # cold start off the trace
        gateway = ServeGateway(system, config)
        loadgen = LoadGenerator(gateway, TRACE).run_blocking()
        results[mode] = (gateway, loadgen)
    return results


def low_priority_throughput(gateway):
    return sum(
        gateway.accountant.throughput_tokens_per_second(cls)
        for cls in (PriorityClass.BATCH, PriorityClass.BACKGROUND)
    )


def test_serve_gateway(benchmark):
    wall_start = time.monotonic()
    results = once(benchmark, run_serve_gateway)
    wall_time = time.monotonic() - wall_start

    rows = []
    for mode, (gateway, _loadgen) in results.items():
        for cls in PriorityClass:
            summary = gateway.accountant.summary(cls, "ttft")
            if summary is None:
                continue
            rows.append([mode, cls.label, summary.count] + summary.row())
    print()
    print(
        render_table(
            ["mode", "class", "n", "p50", "p95", "p99", "max"],
            rows,
            title="Serving gateway: per-class TTFT (s), %d requests over %.0f min"
            % (len(TRACE), DURATION / 60),
        )
    )
    fifo, _ = results["fifo"]
    prio, _ = results["priority+preempt"]
    rows2 = [
        [
            mode,
            "%.3f" % low_priority_throughput(gw),
            gw.preemption_signals,
            "%.1f" % gw.wasted_time,
            "%.3f" % max(
                gw.accountant.utilization(model) for model in gw.lanes
            ),
        ]
        for mode, (gw, _lg) in results.items()
    ]
    print(
        render_table(
            ["mode", "batch+bg tok/s", "preemptions", "wasted s", "max util"],
            rows2,
            title="Cost of preemption",
        )
    )

    # Everyone got served (shedding is off for a like-for-like comparison).
    for _mode, (gateway, loadgen) in results.items():
        assert len(gateway.completed) == loadgen.offered == len(TRACE)

    p95_fifo = fifo.accountant.summary(PriorityClass.INTERACTIVE, "ttft").p95
    p95_prio = prio.accountant.summary(PriorityClass.INTERACTIVE, "ttft").p95
    # The headline: priority preemption collapses the interactive tail...
    assert prio.preemption_signals > 0
    assert p95_prio < 0.5 * p95_fifo
    # ...without giving up batch/background throughput (<= 10% loss).
    assert low_priority_throughput(prio) >= 0.9 * low_priority_throughput(fifo)

    emit_summary(
        "serve_gateway",
        {
            "requests": len(TRACE),
            "duration_s": DURATION,
            "interactive_ttft_p95_s": {"fifo": p95_fifo, "priority+preempt": p95_prio},
            "low_priority_tokens_per_s": {
                mode: low_priority_throughput(gw) for mode, (gw, _lg) in results.items()
            },
            "preemption_signals": {
                mode: gw.preemption_signals for mode, (gw, _lg) in results.items()
            },
            "slo": {
                mode: gw.accountant.to_dict() for mode, (gw, _lg) in results.items()
            },
        },
        wall_time_s=wall_time,
    )
