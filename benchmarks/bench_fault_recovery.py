"""Cost of recovery: serving under fault injection vs fault-free.

One model TA serves the same two-tenant trace three times with the
hardened recovery policy: fault-free, with 1% flash read errors (plus
occasional silent bit-flips), and with NPU scheduler stalls plus
dropped take-over hand-offs.  The claim: recovery keeps the failure
count at zero and the interactive p95 TTFT degrades by a bounded
factor — retries cost backoff time, never correctness.
"""

import pytest

from repro import TINYLLAMA, TZLLM
from repro.analysis import render_table
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.serve import GatewayConfig, LoadGenerator, PriorityClass, ServeGateway
from repro.workloads import TenantSpec, generate_multitenant_trace

from _common import emit_summary, once

DURATION = 600.0
TENANTS = [
    TenantSpec(
        "chat",
        TINYLLAMA.model_id,
        "interactive",
        rate_per_hour=240,
        output_tokens=(2, 8),
    ),
    TenantSpec(
        "indexer",
        TINYLLAMA.model_id,
        "background",
        rate_per_hour=90,
        workload="droidtask",
        output_tokens=(48, 96),
    ),
]
TRACE = generate_multitenant_trace(DURATION, TENANTS, seed=11)

PLANS = {
    "fault-free": None,
    "flash-err-1%": FaultPlan(
        21,
        [
            FaultSpec("flash.read_error", probability=0.01),
            FaultSpec("flash.bit_flip", probability=0.002),
        ],
    ),
    "npu-stall": FaultPlan(
        21,
        [
            FaultSpec("ree.npu_stall", probability=0.3, delay=1e-3, jitter=1e-3),
            FaultSpec("ree.smc_drop", probability=0.05, max_fires=50),
            FaultSpec("tee.job_hang", probability=0.1, delay=2e-3, jitter=2e-3),
        ],
    ),
}


def run_fault_recovery():
    results = {}
    for mode, plan in PLANS.items():
        # cache_fraction=0 keeps every request on the flash-restore path,
        # so storage faults genuinely hit the measured window.
        system = TZLLM(
            TINYLLAMA, cache_fraction=0.0, recovery=RecoveryPolicy.hardened()
        )
        system.run_infer(8, 0)  # cold start off the trace
        injector = plan.injector(system.sim).arm(system) if plan else None
        gateway = ServeGateway(system, GatewayConfig(scheduling="priority"))
        loadgen = LoadGenerator(gateway, TRACE).run_blocking()
        results[mode] = (system, gateway, loadgen, injector)
    return results


def test_fault_recovery(benchmark):
    results = once(benchmark, run_fault_recovery)

    rows = []
    for mode, (_system, gateway, _loadgen, _injector) in results.items():
        for cls in PriorityClass:
            summary = gateway.accountant.summary(cls, "ttft")
            if summary is None:
                continue
            rows.append([mode, cls.label, summary.count] + summary.row())
    print()
    print(
        render_table(
            ["mode", "class", "n", "p50", "p95", "p99", "max"],
            rows,
            title="TTFT (s) by fault mode",
        )
    )

    recovery_rows = []
    for mode, (system, gateway, loadgen, _injector) in results.items():
        flash = system.stack.kernel.fs.flash
        export = gateway.accountant.to_dict()["classes"]
        retries = sum(stats["retries"] for stats in export.values())
        recovery_rows.append(
            [
                mode,
                loadgen.offered,
                len(gateway.completed),
                len(gateway.failed),
                flash.read_errors,
                system.ta.backend.refetched_groups,
                system.stack.ree_npu.shadow_jobs_dropped,
                system.stack.tee_npu.reissues,
                retries,
            ]
        )
    print(
        render_table(
            [
                "mode",
                "offered",
                "done",
                "failed",
                "flash-errs",
                "refetches",
                "smc-drops",
                "reissues",
                "gw-retries",
            ],
            recovery_rows,
            title="Recovery counters",
        )
    )

    # The hardened policy absorbs every injected fault: no request fails.
    for mode, (_system, gateway, loadgen, _injector) in results.items():
        assert len(gateway.failed) == 0, mode
        assert len(gateway.completed) + len(loadgen.rejected) == loadgen.offered

    # The faulted modes really were faulted...
    flash_mode = results["flash-err-1%"]
    assert flash_mode[0].stack.kernel.fs.flash.read_errors > 0
    npu_mode = results["npu-stall"]
    assert npu_mode[0].stack.ree_npu.shadow_jobs_dropped > 0

    # ...and degradation stays bounded: recovery costs backoff time, not
    # a qualitative collapse of interactive latency.
    def p95(gateway):
        return gateway.accountant.summary(PriorityClass.INTERACTIVE, "ttft").p95

    baseline = p95(results["fault-free"][1])
    for mode in ("flash-err-1%", "npu-stall"):
        assert p95(results[mode][1]) <= 2.0 * baseline, mode

    emit_summary(
        "fault_recovery",
        {
            "modes": {
                mode: {
                    "offered": loadgen.offered,
                    "completed": len(gateway.completed),
                    "failed": len(gateway.failed),
                    "interactive_p95_ttft_s": p95(gateway),
                }
                for mode, (_system, gateway, loadgen, _injector) in sorted(
                    results.items()
                )
            },
        },
    )
