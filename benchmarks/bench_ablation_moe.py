"""Limitation ablation (§4.1): non-deterministic workloads (MoE).

TZ-LLM's restoration planner needs the memory-access pattern in advance;
a Mixture-of-Experts model routes per token, so the plan conservatively
prefetches *all* experts — including ones this inference never touches.
The paper notes the cost "can be amortized by future inferences".  This
bench builds a 4-expert variant of TinyLlama, measures the speculative
prefetch volume and its TTFT cost on a cold start, and shows the
amortization: with the experts cached, subsequent inferences pay nothing.
"""

from dataclasses import replace

import pytest

from repro.analysis import render_table
from repro.llm import TINYLLAMA

from _common import build_tzllm, emit_summary, once, warm

MOE = replace(
    TINYLLAMA,
    model_id="tinyllama-moe-4x",
    display_name="TinyLlama-MoE-4x",
    n_experts=4,
    experts_per_token=1,
)


def run_moe_ablation():
    dense = build_tzllm(TINYLLAMA)
    warm(dense)
    dense_record = dense.run_infer(128, 0)

    moe_cold = build_tzllm(MOE)
    warm(moe_cold)
    moe_record = moe_cold.run_infer(128, 0)

    moe_cached = build_tzllm(MOE, cache_fraction=1.0)
    warm(moe_cached)
    moe_cached.run_infer(16, 0)  # fills the cache with ALL experts
    cached_record = moe_cached.run_infer(128, 0)

    return dense, dense_record, moe_cold, moe_record, cached_record


def test_ablation_moe_speculative_prefetch(benchmark):
    dense, dense_rec, moe, moe_rec, cached_rec = once(benchmark, run_moe_ablation)
    speculative = moe.ta.plan.speculative_bytes
    rows = [
        ["dense TinyLlama", "%.2f GB" % (dense.ta.plan.total_nominal_bytes / 1e9),
         "0 GB", "%.2f" % dense_rec.ttft],
        ["MoE-4x, cold", "%.2f GB" % (moe.ta.plan.total_nominal_bytes / 1e9),
         "%.2f GB" % (speculative / 1e9), "%.2f" % moe_rec.ttft],
        ["MoE-4x, experts cached", "(same)", "(amortized)", "%.2f" % cached_rec.ttft],
    ]
    print()
    print(render_table(
        ["configuration", "restored bytes", "speculative bytes", "TTFT (s)"],
        rows, title="§4.1 limitation: MoE prefetches every expert"))

    # The planner really prefetches experts the inference may not use:
    # 3 unused experts per layer are speculative.
    unused = MOE.n_experts - MOE.experts_per_token
    assert speculative == pytest.approx(
        unused * MOE.n_layers * MOE.ffn_params_per_expert * MOE.bytes_per_param, rel=1e-6
    )
    assert moe.ta.plan.total_nominal_bytes > 2 * dense.ta.plan.total_nominal_bytes
    # Cold MoE TTFT pays for the speculative volume...
    assert moe_rec.ttft > 1.5 * dense_rec.ttft
    # ...and caching amortizes it away (future inferences reuse experts).
    assert cached_rec.ttft < 0.5 * moe_rec.ttft
    assert cached_rec.pipeline.loaded_bytes == 0

    emit_summary(
        "ablation_moe",
        {
            "dense_ttft_s": dense_rec.ttft,
            "moe_cold_ttft_s": moe_rec.ttft,
            "moe_cached_ttft_s": cached_rec.ttft,
            "speculative_bytes": speculative,
        },
    )
