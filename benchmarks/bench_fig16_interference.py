"""Figure 16: CMA migration interference on REE applications.

Geekbench runs concurrently with a worst-case LLM loop (Llama-3-8B,
512-token prefill; TZ-LLM revokes all memory and restarts, so migration
repeats).  Paper claims: Geekbench degrades by at most ~6.7% vs the
baselines — comparable to S2PT's cost but *transient*: once inference
stops, the overhead is gone (the S2PT design pays it forever).
"""

import pytest

from repro import PAPER_PRESSURE
from repro.analysis import render_table
from repro.llm import LLAMA3_8B
from repro.ree.s2pt import S2PTState
from repro.workloads import GEEKBENCH_SUITE, run_suite

from _common import build_ree_memory, build_tzllm, emit_summary, once, warm

PREFILL_ROUNDS = 2


def _geekbench_window(system, model, rounds, revoke):
    """Run the LLM loop; return (scores, window) from its CMA records."""
    stress = system.apply_pressure(PAPER_PRESSURE[model.model_id])
    start = system.sim.now
    for _ in range(rounds):
        stress.refresh()
        system.run_infer(512, 0)
    end = system.sim.now
    stress.stop()
    regions = list(system.stack.kernel.cma_regions.values())
    scores = run_suite(
        system.stack.spec,
        S2PTState(enabled=False),
        regions=regions,
        window_start=start,
        window_end=end,
    )
    return scores, (start, end)


def run_fig16():
    model = LLAMA3_8B
    # TZ-LLM with full revocation after each request = repeated migration.
    tz = build_tzllm(model, cache_fraction=0.0)
    warm(tz)
    tz_scores, tz_window = _geekbench_window(tz, model, PREFILL_ROUNDS, revoke=True)

    # REE-LLM-Memory never allocates during the loop: no migration.
    ree = build_ree_memory(model)
    ree_scores, _ = _geekbench_window(ree, model, PREFILL_ROUNDS, revoke=False)

    # Transience: score the same TZ-LLM system over an idle window after
    # the loop (no migration records overlap it).
    idle_start = tz.sim.now + 100.0
    idle_scores = run_suite(
        tz.stack.spec,
        S2PTState(enabled=False),
        regions=list(tz.stack.kernel.cma_regions.values()),
        window_start=idle_start,
        window_end=idle_start + 10.0,
    )
    return tz_scores, ree_scores, idle_scores


def test_fig16_cma_interference(benchmark):
    tz_scores, ree_scores, idle_scores = once(benchmark, run_fig16)
    rows = []
    degradations = []
    for app in GEEKBENCH_SUITE:
        degradation = (1 - tz_scores[app.name] / ree_scores[app.name]) * 100
        degradations.append(degradation)
        rows.append(
            [app.name, "%.0f" % ree_scores[app.name], "%.0f" % tz_scores[app.name],
             "%.1f%%" % degradation, "%.0f" % idle_scores[app.name]]
        )
    print()
    print(render_table(
        ["app", "vs REE-LLM-Memory", "during TZ-LLM prefill", "degradation",
         "after inference (idle)"],
        rows, title="Figure 16: Geekbench under concurrent LLM prefill"))

    # Paper: up to ~6.7% degradation during prefill.
    assert 1.0 < max(degradations) < 12.0
    assert all(d >= -0.01 for d in degradations)
    # ...and *transient*: an idle window shows no degradation at all.
    for app in GEEKBENCH_SUITE:
        assert idle_scores[app.name] == pytest.approx(ree_scores[app.name], rel=1e-6)

    emit_summary(
        "fig16_interference",
        {
            "max_degradation_pct": max(degradations),
            "degradation_pct": {
                app.name: (1 - tz_scores[app.name] / ree_scores[app.name]) * 100
                for app in GEEKBENCH_SUITE
            },
        },
    )
