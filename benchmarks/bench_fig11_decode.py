"""Figure 11: token-generation (decode) speed per model and system.

Paper claims (C2): TZ-LLM decodes 0.9%~23.2% faster than the strawman
(NPU in the TEE, limited by decode's single-token batches) and
1.3%~4.9% slower than the REE baselines (co-driver communication),
with the overhead shrinking as models grow.
"""

import pytest

from repro.analysis import percent_change, render_table

from _common import (
    DECODE_PROMPT,
    DECODE_TOKENS,
    SYSTEM_BUILDERS,
    bench_models,
    emit_summary,
    once,
    warm,
)


def run_fig11():
    results = {}  # (model, system) -> tok/s
    for model in bench_models():
        for system_name, builder in SYSTEM_BUILDERS.items():
            system = builder(model)
            warm(system)
            record = system.run_infer(DECODE_PROMPT, DECODE_TOKENS)
            results[(model.model_id, system_name)] = record.decode_tokens_per_second
    return results


def test_fig11_decode_speed(benchmark):
    results = once(benchmark, run_fig11)
    models = bench_models()
    rows = [
        [model.display_name]
        + ["%.2f" % results[(model.model_id, s)] for s in SYSTEM_BUILDERS]
        for model in models
    ]
    print()
    print(render_table(["model"] + list(SYSTEM_BUILDERS), rows,
                       title="Figure 11: decode speed (tokens/s)"))

    gains, overheads = {}, {}
    for model in models:
        tz = results[(model.model_id, "TZ-LLM")]
        straw = results[(model.model_id, "Strawman")]
        ree = results[(model.model_id, "REE-LLM-Memory")]
        gains[model.model_id] = percent_change(tz, straw)
        overheads[model.model_id] = percent_change(tz, ree)
        print("%s: +%.1f%% vs strawman, %.1f%% vs REE"
              % (model.display_name, gains[model.model_id], overheads[model.model_id]))

    # C2 shape: a modest improvement over the strawman everywhere (the
    # smallest model sits at ~0%: NPU launch latency and mid-decode KV
    # extensions eat the bandwidth gain, exactly the paper's 0.9% story).
    assert all(-2.0 <= g < 30.0 for g in gains.values())
    # ...growing with model size (bandwidth-bound decode favours big
    # matmuls; tiny ones lose the gain to launch latency).
    ordered = [gains[m.model_id] for m in models]
    assert ordered == sorted(ordered)
    # Small slowdown vs REE from co-driver communication (paper <= 4.9%).
    assert all(-8.0 < o <= 0.5 for o in overheads.values())
    # REE-Memory and REE-Flash decode identically (paper shows one bar).
    for model in models:
        assert results[(model.model_id, "REE-LLM-Memory")] == pytest.approx(
            results[(model.model_id, "REE-LLM-Flash")], rel=0.02
        )

    emit_summary(
        "fig11_decode",
        {
            "tokens_per_second": {
                "%s/%s" % (m, s): v for (m, s), v in sorted(results.items())
            },
            "gain_vs_strawman_pct": dict(sorted(gains.items())),
            "overhead_vs_ree_pct": dict(sorted(overheads.items())),
        },
    )
