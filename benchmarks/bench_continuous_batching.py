"""Continuous batching: decode throughput scaling with batch size.

Decode is bandwidth-bound: every step streams the full weight set once
regardless of how many sequences share it, so batching B sequences
multiplies the per-step FLOPs by B while the dominant byte traffic stays
flat — aggregate decode throughput scales near-linearly until compute
catches up with the roofline.  This bench serves N concurrent requests
through one TA at batch sizes 1/2/4 and compares against the serialized
single-stream baseline (the paper's one-request-at-a-time TA).

Headline assertion (ISSUE acceptance): >= 2x aggregate decode
throughput at batch 4 versus serialized.
"""

import time

from repro import TZLLM
from repro.analysis import render_table
from repro.core import BatchConfig
from repro.llm import TINYLLAMA

from _common import emit_summary, once

CONCURRENCY = 4
PROMPT = 64
OUTPUT = 48
BATCH_SIZES = (1, 2, 4)


def serve_concurrent(system, n):
    """Run n overlapping infer() processes; returns their records."""
    sim = system.sim
    records = []

    def one():
        record = yield from system.infer(PROMPT, OUTPUT)
        records.append(record)

    procs = [sim.process(one()) for _ in range(n)]
    for proc in procs:
        sim.run_until(proc)
    return records


def run_continuous_batching():
    results = {}

    # Serialized baseline: the paper's single-stream TA, back to back.
    single = TZLLM(TINYLLAMA, cache_fraction=1.0)
    single.run_infer(8, 0)  # cold start off the measured path
    serial_records = [single.run_infer(PROMPT, OUTPUT) for _ in range(CONCURRENCY)]
    serial_time = sum(sum(r.decode.step_times) for r in serial_records)
    results["serialized"] = {
        "decode_s": serial_time,
        "tokens": CONCURRENCY * OUTPUT,
        "throughput": CONCURRENCY * OUTPUT / serial_time,
        "mean_occupancy": 1.0,
    }

    for batch in BATCH_SIZES:
        system = TZLLM(
            TINYLLAMA,
            cache_fraction=1.0,
            batch_config=BatchConfig(max_batch_size=batch, block_tokens=16),
        )
        system.run_infer(8, 0)
        records = serve_concurrent(system, CONCURRENCY)
        engine = system.ta.batch_engine
        # busy_time sums the fused steps (the single stepper never
        # overlaps itself) — directly comparable to the serialized sum.
        results["batch=%d" % batch] = {
            "decode_s": engine.busy_time,
            "tokens": engine.tokens_generated,
            "throughput": engine.tokens_generated / engine.busy_time,
            "mean_occupancy": engine.occupancy_mean(),
            "steps": engine.steps,
            "kv_extends": engine.kv_extends,
        }
        # Batching must not change what any sequence decodes.
        assert all(
            r.decode.token_ids == serial_records[0].decode.token_ids for r in records
        )
        # ...and must drain completely.
        assert system.ta.kv_bytes_in_use == 0
        assert system.ta.data_region.allocated == 0
    return results


def test_continuous_batching(benchmark):
    wall_start = time.monotonic()
    results = once(benchmark, run_continuous_batching)
    wall_time = time.monotonic() - wall_start

    base = results["serialized"]["throughput"]
    rows = [
        [
            mode,
            "%.2f" % data["decode_s"],
            "%.1f" % data["throughput"],
            "%.2fx" % (data["throughput"] / base),
            "%.2f" % data["mean_occupancy"],
        ]
        for mode, data in results.items()
    ]
    print()
    print(
        render_table(
            ["mode", "decode s", "tok/s", "speedup", "occupancy"],
            rows,
            title="Continuous batching: %d requests, %d tokens each"
            % (CONCURRENCY, OUTPUT),
        )
    )

    # Throughput is monotone in batch size...
    tputs = [results["batch=%d" % b]["throughput"] for b in BATCH_SIZES]
    assert tputs == sorted(tputs)
    # ...batch=1 through the batched machinery costs ~nothing extra...
    assert results["batch=1"]["throughput"] >= 0.9 * base
    # ...and the ISSUE headline: >= 2x aggregate throughput at batch 4.
    assert results["batch=4"]["throughput"] >= 2.0 * base
    assert results["batch=4"]["mean_occupancy"] > 2.0

    emit_summary(
        "continuous_batching",
        {
            "concurrency": CONCURRENCY,
            "prompt_tokens": PROMPT,
            "output_tokens": OUTPUT,
            "modes": results,
            "speedup_at_4": results["batch=4"]["throughput"] / base,
        },
        wall_time_s=wall_time,
    )
