"""Benchmark-harness plumbing: persist every bench's printed figures.

Each bench prints the rows/series of the paper figure it regenerates.
This autouse fixture captures that output and writes it to
``bench_results/<test>.txt``, so a plain ``pytest benchmarks/
--benchmark-only`` run leaves the full set of regenerated tables on disk
(add ``-s`` to stream them to the console instead).
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")


@pytest.fixture(autouse=True)
def save_bench_output(request, capsys):
    yield
    try:
        captured = capsys.readouterr()
    except Exception:
        return
    if not captured.out.strip():
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, request.node.name + ".txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(captured.out)
    # Re-emit so -s / -rA users still see it.
    print(captured.out, end="")
