"""Design ablation (§2.4.2): transient CMA overhead vs continuous S2PT.

The paper's core memory-design argument: S2PT taxes every REE
application continuously (stage-2 walks, ~2% average on Geekbench),
while CMA migration costs appear only while an inference is restoring
parameters.  This bench quantifies the trade across inference rates on a
simulated duty cycle and locates the crossover: below some
inferences-per-hour, the CMA design is strictly cheaper for the REE;
S2PT only catches up when the device infers nearly continuously (and
even then it still needs IOMMU interception to stop DMA).
"""

import pytest

from repro import PAPER_PRESSURE
from repro.analysis import mean, render_table
from repro.llm import LLAMA3_8B
from repro.ree.s2pt import S2PTState, s2pt_slowdown
from repro.workloads import GEEKBENCH_SUITE, migration_slowdown, run_suite

from _common import build_tzllm, emit_summary, once, warm

RATES_PER_HOUR = (1, 6, 30, 120, 360)


def run_design_ablation():
    model = LLAMA3_8B
    system = build_tzllm(model, cache_fraction=0.0)
    warm(system)
    stress = system.apply_pressure(PAPER_PRESSURE[model.model_id])
    stress.refresh()
    start = system.sim.now
    system.run_infer(512, 0)
    end = system.sim.now
    stress.stop()
    regions = list(system.stack.kernel.cma_regions.values())
    inference_span = end - start

    # Average Geekbench slowdown *while* an inference runs:
    busy = [
        migration_slowdown(app, regions, start, end, system.stack.spec) - 1.0
        for app in GEEKBENCH_SUITE
    ]
    busy_overhead = mean(busy)

    # Continuous S2PT average overhead on the same suite:
    s2pt_scores = run_suite(system.stack.spec, S2PTState(enabled=True, fragmented=True))
    base_scores = run_suite(system.stack.spec, S2PTState(enabled=False))
    s2pt_overhead = mean(
        [base_scores[a.name] / s2pt_scores[a.name] - 1.0 for a in GEEKBENCH_SUITE]
    )

    rows = []
    for rate in RATES_PER_HOUR:
        duty = min(1.0, rate * inference_span / 3600.0)
        cma_avg = busy_overhead * duty
        rows.append((rate, duty, cma_avg, s2pt_overhead))
    return rows, busy_overhead, s2pt_overhead, inference_span


def test_ablation_s2pt_vs_cma_duty_cycle(benchmark):
    rows, busy_overhead, s2pt_overhead, span = once(benchmark, run_design_ablation)
    print()
    print(render_table(
        ["inferences/hour", "restore duty cycle", "CMA avg REE overhead", "S2PT avg REE overhead"],
        [
            [r, "%.1f%%" % (d * 100), "%.2f%%" % (c * 100), "%.2f%%" % (s * 100)]
            for r, d, c, s in rows
        ],
        title="§2.4.2 ablation: transient CMA vs continuous S2PT "
              "(Llama-3-8B, one restore ≈ %.1f s)" % span,
    ))

    # While restoring, CMA interference is real but bounded (Fig. 16 class).
    assert 0.005 < busy_overhead < 0.10
    # S2PT's continuous tax matches Fig. 2's ~2% average.
    assert s2pt_overhead == pytest.approx(0.021, abs=0.01)
    # At assistant-like rates (a few per hour), CMA is far cheaper...
    low = rows[0]
    assert low[2] < s2pt_overhead / 5
    # ...and the averaged overheads only cross (if ever) near continuous
    # inference duty.
    for rate, duty, cma_avg, s2pt_avg in rows:
        if cma_avg > s2pt_avg:
            assert duty > 0.5

    emit_summary(
        "ablation_s2pt_design",
        {
            "busy_overhead": busy_overhead,
            "s2pt_overhead": s2pt_overhead,
            "inference_span_s": span,
            "rows": [
                {"rate_per_hour": r, "duty": d, "cma_avg": c, "s2pt_avg": s}
                for r, d, c, s in rows
            ],
        },
    )
