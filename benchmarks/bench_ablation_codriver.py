"""Design ablation (§2.3 / §4.3): co-driver vs detach-attach NPU sharing.

The rejected design re-initializes a full driver on every world hand-off
(32 ms measured on the Rockchip stack); the co-driver switches with a few
SMCs and TrustZone register writes.  Decode issues one secure job per
matmul, so the difference compounds: this bench decodes with both
mechanisms and reports tokens/s plus the per-switch cost.
"""

import pytest

from repro.analysis import render_table

from _common import (
    DECODE_PROMPT,
    DECODE_TOKENS,
    bench_models,
    build_tzllm,
    emit_summary,
    once,
    warm,
)


def run_codriver_ablation():
    results = {}
    for model in bench_models():
        for mechanism, reinit in (("co-driver", False), ("detach-attach", True)):
            system = build_tzllm(
                model,
                cache_fraction=1.0,
                decode_use_npu=True,
                npu_reinit_on_switch=reinit,
            )
            warm(system)
            system.run_infer(64, 0)  # fill the cache
            record = system.run_infer(DECODE_PROMPT, DECODE_TOKENS)
            switches = system.stack.tee_npu.world_switches
            switch_time = system.stack.tee_npu.world_switch_time
            results[(model.model_id, mechanism)] = (
                record.decode_tokens_per_second,
                switch_time / max(1, switches),
            )
    return results


def test_ablation_codriver_vs_detach_attach(benchmark):
    results = once(benchmark, run_codriver_ablation)
    models = bench_models()
    rows = []
    for model in models:
        co = results[(model.model_id, "co-driver")]
        da = results[(model.model_id, "detach-attach")]
        rows.append(
            [model.display_name, "%.2f" % co[0], "%.2f" % da[0],
             "%.0f us" % (co[1] * 1e6), "%.1f ms" % (da[1] * 1e3),
             "%.1fx" % (co[0] / da[0])]
        )
    print()
    print(render_table(
        ["model", "co-driver tok/s", "detach-attach tok/s",
         "switch (co-driver)", "switch (reinit)", "decode speedup"],
        rows, title="§4.3 ablation: NPU world-switch mechanism during decode"))

    for model in models:
        co_tps, co_switch = results[(model.model_id, "co-driver")]
        da_tps, da_switch = results[(model.model_id, "detach-attach")]
        # The co-driver switch is microseconds; re-init is the 32 ms class.
        assert co_switch < 1e-3
        assert da_switch > 30e-3
        # Decode visibly suffers under detach-attach, more for small
        # models (more switches per second of compute).
        assert co_tps > da_tps * 1.2
    small, large = models[0], models[-1]
    ratio_small = (
        results[(small.model_id, "co-driver")][0]
        / results[(small.model_id, "detach-attach")][0]
    )
    ratio_large = (
        results[(large.model_id, "co-driver")][0]
        / results[(large.model_id, "detach-attach")][0]
    )
    assert ratio_small > ratio_large

    emit_summary(
        "ablation_codriver",
        {
            "cells": {
                "%s/%s" % (m, mech): {
                    "tokens_per_second": tps,
                    "switch_time_s": switch,
                }
                for (m, mech), (tps, switch) in sorted(results.items())
            },
        },
    )
