"""Figure 2: Geekbench under stage-2 page tables (the rejected design).

S2PT protection costs every REE application a two-dimensional page walk
per TLB miss, *continuously*.  Paper: up to 9.8% per-app overhead, 2.0%
on average, with fragmented 4 KiB mappings.
"""

import pytest

from repro import RK3588
from repro.analysis import mean, render_table
from repro.ree.s2pt import S2PTState
from repro.workloads import GEEKBENCH_SUITE, run_suite

from _common import emit_summary, once


def run_fig02():
    baseline = run_suite(RK3588, S2PTState(enabled=False))
    fragmented = run_suite(RK3588, S2PTState(enabled=True, fragmented=True))
    huge = run_suite(RK3588, S2PTState(enabled=True, fragmented=False))
    return baseline, fragmented, huge


def test_fig02_s2pt_geekbench(benchmark):
    baseline, fragmented, huge = once(benchmark, run_fig02)
    rows = []
    overheads = []
    for app in GEEKBENCH_SUITE:
        overhead = (baseline[app.name] / fragmented[app.name] - 1.0) * 100
        overheads.append(overhead)
        rows.append(
            [app.name, "%.0f" % baseline[app.name], "%.0f" % fragmented[app.name],
             "%.1f%%" % overhead, "%.0f" % huge[app.name]]
        )
    rows.append(["(average)", "", "", "%.1f%%" % mean(overheads), ""])
    print()
    print(render_table(
        ["app", "S2PT off", "S2PT on (4 KiB)", "overhead", "S2PT on (2 MiB)"],
        rows, title="Figure 2: Geekbench scores with stage-2 translation"))

    # Paper: max 9.8%, average 2.0%.
    assert max(overheads) == pytest.approx(9.8, abs=0.6)
    assert mean(overheads) == pytest.approx(2.0, abs=0.7)
    # Huge mappings are far cheaper — but fragmentation destroys them.
    for app in GEEKBENCH_SUITE:
        assert huge[app.name] >= fragmented[app.name]

    emit_summary(
        "fig02_s2pt",
        {
            "max_overhead_pct": max(overheads),
            "mean_overhead_pct": mean(overheads),
            "per_app_overhead_pct": {
                app.name: (baseline[app.name] / fragmented[app.name] - 1.0) * 100
                for app in GEEKBENCH_SUITE
            },
        },
    )
