"""Future-work ablation (§8): decode-time parameter streaming.

The paper keeps all parameters resident during decoding and defers
LLM-in-a-flash-style offloading to future work.  This bench implements
the combination: keep a fraction of parameters resident, stream the rest
from (encrypted) flash every token, double-buffered against computation —
and maps the memory/speed trade-off that results.
"""

import pytest

from repro.analysis import render_table
from repro.llm import TINYLLAMA

from _common import build_tzllm, emit_summary, once, warm

RESIDENCIES = (1.0, 0.75, 0.5, 0.25)
DECODE_TOKENS = 12


def run_streaming_ablation():
    results = {}
    for residency in RESIDENCIES:
        system = build_tzllm(TINYLLAMA, decode_param_residency=residency)
        warm(system)
        record = system.run_infer(64, DECODE_TOKENS)
        resident_bytes = int(system.ta.plan.total_alloc_bytes * residency)
        results[residency] = (
            record.decode_tokens_per_second,
            resident_bytes,
            record.streamed_bytes_per_token,
        )
    return results


def test_ablation_decode_streaming(benchmark):
    results = once(benchmark, run_streaming_ablation)
    rows = [
        ["%.0f%%" % (r * 100), "%.2f" % tps, "%.0f MB" % (mem / 1e6),
         "%.0f MB" % (streamed / 1e6)]
        for r, (tps, mem, streamed) in results.items()
    ]
    print()
    print(render_table(
        ["resident params", "decode tok/s", "resident memory", "streamed/token"],
        rows, title="§8 extension: decode with parameter streaming (TinyLlama)"))

    speeds = [results[r][0] for r in RESIDENCIES]
    memories = [results[r][1] for r in RESIDENCIES]
    # Less residency => less memory, monotonically slower decode.
    assert memories == sorted(memories, reverse=True)
    assert speeds == sorted(speeds, reverse=True)
    # At full residency nothing streams; at 25% decode is flash-bound.
    assert results[1.0][2] == 0
    flash_bound = results[0.25][2] / 2.0e9
    assert 1.0 / results[0.25][0] >= flash_bound * 0.9
    # The trade is severe, as the paper implies by deferring it: quarter
    # residency costs more than half the decode speed.
    assert results[0.25][0] < 0.5 * results[1.0][0]

    emit_summary(
        "ablation_streaming",
        {
            "residencies": {
                "%.2f" % r: {
                    "tokens_per_second": tps,
                    "resident_bytes": mem,
                    "streamed_bytes_per_token": streamed,
                }
                for r, (tps, mem, streamed) in sorted(results.items())
            },
        },
    )
