"""Mitigation ablation (§6): what closing the size side channel costs.

The paper proposes dummy parameter loading to hide tensor sizes from the
REE.  This bench measures the channel and its mitigation: the number of
distinct load sizes the REE observes (the leak) against TTFT and secure-
memory footprint (the price) for no obfuscation, 16 MiB quantum padding,
and fully uniform groups.
"""

import pytest

from repro.analysis import render_table
from repro.config import MiB
from repro.llm import TINYLLAMA, container_path

from _common import build_tzllm, emit_summary, once, warm

MODES = (("none", None), ("quantum-16MiB", 16 * MiB), ("uniform", "uniform"))


def run_obfuscation_ablation():
    results = {}
    for mode_name, mode in MODES:
        system = build_tzllm(TINYLLAMA, size_obfuscation=mode)
        warm(system)
        record = system.run_infer(128, 0)
        path = container_path(TINYLLAMA.model_id)
        load_sizes = {
            nominal
            for p, _o, _s, nominal in system.stack.kernel.fs.request_log
            if p == path and nominal
        }
        results[mode_name] = (
            len(load_sizes),
            record.ttft,
            system.ta.plan.total_alloc_bytes,
        )
    return results


def test_ablation_size_obfuscation(benchmark):
    results = once(benchmark, run_obfuscation_ablation)
    base = results["none"]
    rows = [
        [name, sizes, "%.2f" % ttft, "%.0f MB" % (mem / 1e6),
         "+%.0f%%" % ((ttft / base[1] - 1) * 100),
         "+%.0f%%" % ((mem / base[2] - 1) * 100)]
        for name, (sizes, ttft, mem) in results.items()
    ]
    print()
    print(render_table(
        ["mode", "distinct load sizes (leak)", "TTFT (s)", "secure mem",
         "TTFT cost", "memory cost"],
        rows, title="§6 mitigation: dummy parameter loading (TinyLlama, 128 tokens)"))

    none_leak, none_ttft, none_mem = results["none"]
    quant_leak, quant_ttft, quant_mem = results["quantum-16MiB"]
    uni_leak, uni_ttft, uni_mem = results["uniform"]
    # The channel exists without the mitigation...
    assert none_leak > 3
    # ...quantization coarsens it, uniformity closes it.
    assert quant_leak < none_leak
    assert uni_leak == 1
    # The price is real and ordered: more hiding, more cost.
    assert none_ttft < quant_ttft < uni_ttft
    assert none_mem < quant_mem < uni_mem
    # But even full uniformity stays within ~4x TTFT for this model.
    assert uni_ttft < 4 * none_ttft

    emit_summary(
        "ablation_obfuscation",
        {
            "modes": {
                name: {
                    "distinct_load_sizes": sizes,
                    "ttft_s": ttft,
                    "secure_mem_bytes": mem,
                }
                for name, (sizes, ttft, mem) in sorted(results.items())
            },
        },
    )
