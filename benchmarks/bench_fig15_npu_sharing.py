"""Figure 15: NPU time-sharing between REE NN apps and the LLM.

YOLOv5 / MobileNet run concurrently with LLM decode (512-token context,
100% cached parameters), in four configurations per pair: the LLM in the
REE or the TEE, each exclusive (EX) or sharing the NPU (SH).  Paper
claims: sharing costs both sides throughput, and the TEE-REE mechanism
adds at most ~3.8% (NN side) / ~3.0% (LLM side) over REE-REE sharing;
the switch hardware costs (smc + TZASC/TZPC/GIC) stay under a few
percent of decode time.
"""

import pytest

from repro.analysis import render_table
from repro.hw import AddrRange
from repro.llm import LLAMA3_8B, TINYLLAMA
from repro.workloads import MOBILENET_V1, NNAppRunner, YOLOV5S

from _common import build_ree_memory, build_tzllm, emit_summary, once, warm

WINDOW = 6.0
DECODE_TOKENS = 24
LLM_MODELS = (TINYLLAMA, LLAMA3_8B)
NN_APPS = (YOLOV5S, MOBILENET_V1)


def _nn_runner(system, app):
    ctx_alloc = system.stack.kernel.alloc_unmovable(4096, tag="nn-ctx")
    ctx = AddrRange(system.stack.kernel.db.frame_addr(min(ctx_alloc.frames)), 4096)
    return NNAppRunner(system.sim, system.stack.spec, system.stack.ree_npu, app, ctx)


def _measure(side, model, app):
    """One (LLM side, model, app) cell: EX and SH throughputs.

    The NN app runs for exactly the duration of the concurrent LLM
    request (prefill + decode), so both sides really contend; the
    exclusive NN measurement covers the same wall-clock span.
    """
    if side == "TEE":
        system = build_tzllm(model, cache_fraction=1.0, decode_use_npu=True)
        warm(system)
    else:
        system = build_ree_memory(model, decode_use_npu=True)
    system.run_infer(512, 0)  # fills the cache (TEE) / warms state

    llm_ex = system.run_infer(512, DECODE_TOKENS).decode_tokens_per_second

    nn_sh_runner = _nn_runner(system, app)
    llm_proc = system.sim.process(system.infer(512, DECODE_TOKENS))
    nn_proc = system.sim.process(nn_sh_runner.run_until(llm_proc))
    record = system.sim.run_until(llm_proc)
    system.sim.run_until(nn_proc)
    llm_sh = record.decode_tokens_per_second
    nn_sh = nn_sh_runner.throughput
    shared_span = nn_sh_runner.stopped_at - nn_sh_runner.started_at

    nn_ex_runner = _nn_runner(system, app)
    proc = system.sim.process(nn_ex_runner.run_for(max(shared_span, 1.0)))
    system.sim.run_until(proc)
    nn_ex = nn_ex_runner.throughput
    return nn_ex, nn_sh, llm_ex, llm_sh


def run_fig15():
    cells = {}
    for model in LLM_MODELS:
        for app in NN_APPS:
            for side in ("REE", "TEE"):
                cells[(model.model_id, app.name, side)] = _measure(side, model, app)
    return cells


def test_fig15_npu_time_sharing(benchmark):
    cells = once(benchmark, run_fig15)
    rows = []
    for model in LLM_MODELS:
        for app in NN_APPS:
            for side in ("REE", "TEE"):
                nn_ex, nn_sh, llm_ex, llm_sh = cells[(model.model_id, app.name, side)]
                rows.append(
                    [model.display_name, app.name, side,
                     "%.1f" % nn_ex, "%.1f" % nn_sh,
                     "%.2f" % llm_ex, "%.2f" % llm_sh]
                )
    print()
    print(render_table(
        ["LLM", "NN app", "LLM side", "NN EX (inf/s)", "NN SH (inf/s)",
         "LLM EX (tok/s)", "LLM SH (tok/s)"],
        rows, title="Figure 15: NPU time-sharing throughputs"))

    for model in LLM_MODELS:
        for app in NN_APPS:
            ree = cells[(model.model_id, app.name, "REE")]
            tee = cells[(model.model_id, app.name, "TEE")]
            # Sharing always costs throughput on both sides.
            assert ree[1] < ree[0] and tee[1] < tee[0]
            assert ree[3] < ree[2] * 1.001 and tee[3] < tee[2] * 1.001
            # TEE-REE sharing adds only a small extra slowdown over
            # REE-REE sharing (paper: <= 3.8% NN, <= 3.0% LLM).
            nn_extra = (ree[1] - tee[1]) / ree[1]
            llm_ratio_ree = ree[3] / ree[2]
            llm_ratio_tee = tee[3] / tee[2]
            llm_extra = llm_ratio_ree - llm_ratio_tee
            assert nn_extra < 0.10, (model.model_id, app.name, nn_extra)
            assert llm_extra < 0.10, (model.model_id, app.name, llm_extra)

    emit_summary(
        "fig15_npu_sharing",
        {
            "cells": {
                "%s/%s/%s" % (m, a, side): {
                    "nn_ex": nn_ex,
                    "nn_sh": nn_sh,
                    "llm_ex": llm_ex,
                    "llm_sh": llm_sh,
                }
                for (m, a, side), (nn_ex, nn_sh, llm_ex, llm_sh) in sorted(cells.items())
            },
        },
    )


def run_switch_overhead_shares():
    """§7.3's quantification: smc + TZASC/TZPC/GIC time as a share of
    TTFT and of decode time."""
    shares = {}
    for model in LLM_MODELS:
        system = build_tzllm(model, cache_fraction=1.0, decode_use_npu=True)
        warm(system)
        system.run_infer(512, 0)  # fill the cache
        prefill = system.run_infer(512, 0)
        ttft_share = prefill.world_switch_time / prefill.ttft
        decode_rec = system.run_infer(128, DECODE_TOKENS)
        decode_time = sum(decode_rec.decode.step_times)
        # world_switch_time spans the whole request; a 0-output twin
        # isolates the prefill portion so the difference is decode-only.
        twin = system.run_infer(128, 0)
        decode_switch = decode_rec.world_switch_time - twin.world_switch_time
        shares[model.model_id] = (ttft_share, decode_switch / decode_time)
    return shares


def test_fig15b_switch_overhead_shares(benchmark):
    shares = once(benchmark, run_switch_overhead_shares)
    rows = [
        [model.display_name,
         "%.2f%%" % (shares[model.model_id][0] * 100),
         "%.2f%%" % (shares[model.model_id][1] * 100)]
        for model in LLM_MODELS
    ]
    print()
    print(render_table(
        ["model", "switch share of TTFT", "switch share of decode"],
        rows, title="§7.3: smc + TZASC/TZPC/GIC time shares "
                    "(paper: 1.6-2.7%% TTFT, 2.3-5.7%% decode)"))
    for model in LLM_MODELS:
        ttft_share, decode_share = shares[model.model_id]
        # Same order of magnitude as the paper's shares; always small.
        assert 0.0 <= ttft_share < 0.05
        assert 0.0 <= decode_share < 0.08

    emit_summary(
        "fig15b_switch_shares",
        {
            "shares": {
                m: {"ttft_share": s[0], "decode_share": s[1]}
                for m, s in sorted(shares.items())
            },
        },
    )
